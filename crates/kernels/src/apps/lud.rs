//! LUD — blocked LU decomposition (Rodinia `lud`).
//!
//! Three kernels driven by a host loop over diagonal steps:
//!
//! * **K1 `lud_diagonal`** — a *single CTA* of 16 threads factorises the
//!   current 16×16 diagonal block in shared memory (the suite's
//!   low-occupancy, long-serial-chain kernel: tiny derating factor, hence
//!   tiny AVF, but high SVF — the paper's flagship divergence case).
//! * **K2 `lud_perimeter`** — 32-thread CTAs solve the row strip (unit
//!   lower triangular solve) and column strip (upper triangular solve with
//!   division) against the factorised diagonal block.
//! * **K3 `lud_internal`** — 256-thread CTAs rank-16-update the trailing
//!   submatrix from shared-memory strips.
//!
//! Product subtractions everywhere use the `a.mul_add(-b, c)` idiom so the
//! CPU reference can mirror the arithmetic bit-exactly.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_f32;
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

/// Matrix side.
pub const N: u32 = 64;
/// Block side.
pub const B: u32 = 16;
const NB: u32 = N / B;
const SEED: u64 = 0x4c55;

pub struct Lud;

/// Input matrix entry (diagonally dominant for a stable factorisation).
pub fn input(i: u32, j: u32) -> f32 {
    let base = hash_f32(SEED, (i * N + j) as u64);
    if i == j {
        base + N as f32
    } else {
        base
    }
}

/// K1: benchmark parameters: 0 = matrix, 1 = base element index
/// (`kb*N + kb`, scalar). One CTA, B threads.
pub fn kernel_diagonal() -> Kernel {
    let mut a = KernelBuilder::new("lud_k1_diagonal");
    let s_dia = a.alloc_smem(B * B * 4);
    debug_assert_eq!(s_dia, 0);
    let roff = tmr::prologue(&mut a);
    let (tx, addr, v, t0, t1, idx) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.s2r(tx, SpecialReg::TidX);
    // Load: dia[i][tx] = m[base + i*N + tx].
    for i in 0..B {
        a.mov(v, tmr::scalar(1));
        a.iadd(v, v, i * N);
        a.iadd(v, v, Operand::Reg(tx));
        tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, v, Operand::Reg(addr), 2);
        a.ld(t0, MemSpace::Global, addr, 0);
        a.iadd(idx, tx, i * B);
        a.shl(idx, idx, 2u32);
        a.st(MemSpace::Shared, idx, 0, t0);
    }
    a.bar();
    for i in 0..B - 1 {
        // Column elimination: dia[tx][i] *= 1/dia[i][i]  (tx > i).
        a.isetp(p, tx, i, CmpOp::Gt, true);
        a.predicated(p, false, |a| {
            a.mov(idx, (i * B + i) * 4);
            a.ld(v, MemSpace::Shared, idx, 0);
            a.frcp(v, v);
            a.shl(idx, tx, B.trailing_zeros());
            a.iadd(idx, idx, i);
            a.shl(idx, idx, 2u32);
            a.ld(t0, MemSpace::Shared, idx, 0);
            a.fmul(t0, t0, Operand::Reg(v));
            a.st(MemSpace::Shared, idx, 0, t0);
        });
        a.bar();
        // Trailing update: dia[tx][j] -= dia[tx][i] * dia[i][j], j > i.
        a.predicated(p, false, |a| {
            a.shl(idx, tx, B.trailing_zeros());
            a.iadd(idx, idx, i);
            a.shl(idx, idx, 2u32);
            a.ld(v, MemSpace::Shared, idx, 0); // dia[tx][i]
            for j in i + 1..B {
                a.mov(idx, (i * B + j) * 4);
                a.ld(t0, MemSpace::Shared, idx, 0); // dia[i][j]
                a.fmul(t0, t0, Operand::imm_f32(-1.0));
                a.shl(idx, tx, B.trailing_zeros());
                a.iadd(idx, idx, j);
                a.shl(idx, idx, 2u32);
                a.ld(t1, MemSpace::Shared, idx, 0);
                a.ffma(t1, v, Operand::Reg(t0), Operand::Reg(t1));
                a.st(MemSpace::Shared, idx, 0, t1);
            }
        });
        a.bar();
    }
    // Write back.
    for i in 0..B {
        a.iadd(idx, tx, i * B);
        a.shl(idx, idx, 2u32);
        a.ld(t0, MemSpace::Shared, idx, 0);
        a.mov(v, tmr::scalar(1));
        a.iadd(v, v, i * N);
        a.iadd(v, v, Operand::Reg(tx));
        tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, v, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, t0);
    }
    a.build().expect("lud_diagonal is well formed")
}

/// K2: benchmark parameters: 0 = matrix, 1 = kb (scalar). Grid = remaining
/// blocks, 2*B threads: the low half solves the row strip, the high half
/// the column strip.
pub fn kernel_perimeter() -> Kernel {
    let mut a = KernelBuilder::new("lud_k2_perimeter");
    let s_dia = a.alloc_smem(B * B * 4);
    let s_row = a.alloc_smem(B * B * 4);
    let s_col = a.alloc_smem(B * B * 4);
    debug_assert_eq!(s_dia, 0);
    let roff = tmr::prologue(&mut a);
    let (tx, idx2, addr, v, t0, t1, idx, gcol) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let p = a.pred();
    a.s2r(tx, SpecialReg::TidX);
    // Cooperatively load the diagonal block: 8 entries per thread.
    for q in 0..8 {
        // e = tx*8 + q; dia[e] = m[(kb + e/B)*N + kb + e%B]
        a.shl(idx, tx, 3u32);
        a.iadd(idx, idx, q);
        a.shr(v, idx, B.trailing_zeros()); // e / B
        a.imul(v, v, N);
        a.and(t0, idx, B - 1); // e % B
        a.iadd(v, v, Operand::Reg(t0));
        a.iadd(v, v, tmr::scalar(1)); // + kb (row)
        a.mov(t0, tmr::scalar(1));
        a.imul(t0, t0, N);
        a.iadd(v, v, Operand::Reg(t0)); // + kb*N
        tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, v, Operand::Reg(addr), 2);
        a.ld(t0, MemSpace::Global, addr, 0);
        a.shl(idx, idx, 2u32);
        a.st(MemSpace::Shared, idx, 0, t0);
    }
    a.bar();
    // gcol/idx2: strip coordinates. chunk = ctaid.x.
    a.isetp(p, tx, B, CmpOp::Lt, true);
    a.if_then_else(
        p,
        false,
        |a| {
            // Row strip: thread tx owns column tx of tile at
            // rows kb..kb+B, cols kb + (chunk+1)*B .. +B.
            a.s2r(gcol, SpecialReg::CtaIdX);
            a.iadd(gcol, gcol, 1u32);
            a.shl(gcol, gcol, B.trailing_zeros());
            a.iadd(gcol, gcol, tmr::scalar(1)); // + kb
            a.iadd(gcol, gcol, Operand::Reg(tx));
            // Load column: row_t[i][tx] = m[(kb+i)*N + gcol].
            for i in 0..B {
                a.mov(v, tmr::scalar(1));
                a.iadd(v, v, i);
                a.imul(v, v, N);
                a.iadd(v, v, Operand::Reg(gcol));
                tmr::load_ptr(a, addr, roff, 0);
                a.iscadd(addr, v, Operand::Reg(addr), 2);
                a.ld(t0, MemSpace::Global, addr, 0);
                a.mov(idx, i * B * 4);
                a.iscadd(idx, tx, Operand::Reg(idx), 2);
                a.st(MemSpace::Shared, idx, s_row as i32, t0);
            }
            // Unit lower solve: row_t[i] -= dia[i][j]*row_t[j], j < i.
            for i in 1..B {
                a.mov(idx, i * B * 4);
                a.iscadd(idx, tx, Operand::Reg(idx), 2);
                a.ld(t1, MemSpace::Shared, idx, s_row as i32);
                for j in 0..i {
                    a.mov(idx2, (i * B + j) * 4);
                    a.ld(v, MemSpace::Shared, idx2, 0); // dia[i][j]
                    a.fmul(v, v, Operand::imm_f32(-1.0));
                    a.mov(idx2, j * B * 4);
                    a.iscadd(idx2, tx, Operand::Reg(idx2), 2);
                    a.ld(t0, MemSpace::Shared, idx2, s_row as i32);
                    a.ffma(t1, t0, Operand::Reg(v), Operand::Reg(t1));
                }
                a.mov(idx, i * B * 4);
                a.iscadd(idx, tx, Operand::Reg(idx), 2);
                a.st(MemSpace::Shared, idx, s_row as i32, t1);
            }
            // Store back.
            for i in 0..B {
                a.mov(idx, i * B * 4);
                a.iscadd(idx, tx, Operand::Reg(idx), 2);
                a.ld(t0, MemSpace::Shared, idx, s_row as i32);
                a.mov(v, tmr::scalar(1));
                a.iadd(v, v, i);
                a.imul(v, v, N);
                a.iadd(v, v, Operand::Reg(gcol));
                tmr::load_ptr(a, addr, roff, 0);
                a.iscadd(addr, v, Operand::Reg(addr), 2);
                a.st(MemSpace::Global, addr, 0, t0);
            }
        },
        |a| {
            // Column strip: thread (tx-B) owns row (tx-B) of tile at
            // rows kb + (chunk+1)*B .., cols kb..kb+B.
            let lane = gcol; // reuse: lane = tx - B
            a.isub(lane, tx, B);
            // grow = kb + (chunk+1)*B + lane
            let grow = idx2;
            a.s2r(grow, SpecialReg::CtaIdX);
            a.iadd(grow, grow, 1u32);
            a.shl(grow, grow, B.trailing_zeros());
            a.iadd(grow, grow, tmr::scalar(1));
            a.iadd(grow, grow, Operand::Reg(lane));
            // Load row: col_t[lane][j] = m[grow*N + kb + j].
            for j in 0..B {
                a.imul(v, grow, N);
                a.iadd(v, v, tmr::scalar(1));
                a.iadd(v, v, j);
                tmr::load_ptr(a, addr, roff, 0);
                a.iscadd(addr, v, Operand::Reg(addr), 2);
                a.ld(t0, MemSpace::Global, addr, 0);
                a.shl(idx, lane, B.trailing_zeros());
                a.iadd(idx, idx, j);
                a.shl(idx, idx, 2u32);
                a.st(MemSpace::Shared, idx, s_col as i32, t0);
            }
            // Upper solve with division:
            // col_t[j] = (col_t[j] - Σ_{i<j} col_t[i]*dia[i][j]) / dia[j][j].
            for j in 0..B {
                a.shl(idx, lane, B.trailing_zeros());
                a.iadd(idx, idx, j);
                a.shl(idx, idx, 2u32);
                a.ld(t1, MemSpace::Shared, idx, s_col as i32);
                for i in 0..j {
                    a.mov(v, (i * B + j) * 4);
                    a.ld(v, MemSpace::Shared, v, 0); // dia[i][j]
                    a.fmul(v, v, Operand::imm_f32(-1.0));
                    a.shl(idx, lane, B.trailing_zeros());
                    a.iadd(idx, idx, i);
                    a.shl(idx, idx, 2u32);
                    a.ld(t0, MemSpace::Shared, idx, s_col as i32);
                    a.ffma(t1, t0, Operand::Reg(v), Operand::Reg(t1));
                }
                a.mov(v, (j * B + j) * 4);
                a.ld(v, MemSpace::Shared, v, 0); // pivot
                a.frcp(v, v);
                a.fmul(t1, t1, Operand::Reg(v));
                a.shl(idx, lane, B.trailing_zeros());
                a.iadd(idx, idx, j);
                a.shl(idx, idx, 2u32);
                a.st(MemSpace::Shared, idx, s_col as i32, t1);
            }
            // Store back.
            for j in 0..B {
                a.shl(idx, lane, B.trailing_zeros());
                a.iadd(idx, idx, j);
                a.shl(idx, idx, 2u32);
                a.ld(t0, MemSpace::Shared, idx, s_col as i32);
                a.imul(v, grow, N);
                a.iadd(v, v, tmr::scalar(1));
                a.iadd(v, v, j);
                tmr::load_ptr(a, addr, roff, 0);
                a.iscadd(addr, v, Operand::Reg(addr), 2);
                a.st(MemSpace::Global, addr, 0, t0);
            }
        },
    );
    a.build().expect("lud_perimeter is well formed")
}

/// K3: benchmark parameters: 0 = matrix, 1 = kb (scalar), 2 = nbb
/// (remaining blocks per side, scalar). Grid = nbb², B*B threads.
pub fn kernel_internal() -> Kernel {
    let mut a = KernelBuilder::new("lud_k3_internal");
    let s_a = a.alloc_smem(B * B * 4); // U strip above the target tile
    let s_b = a.alloc_smem(B * B * 4); // L strip left of the target tile
    debug_assert_eq!(s_a, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, tx, ty, bx, by, addr, v, t0, acc) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let p = a.pred();
    a.s2r(tid, SpecialReg::TidX);
    a.and(tx, tid, B - 1);
    a.shr(ty, tid, B.trailing_zeros());
    // (bx, by) = ctaid % nbb, ctaid / nbb via repeated subtraction
    // (nbb <= 3; the ISA has no integer divide, like early GPUs).
    a.s2r(bx, SpecialReg::CtaIdX);
    a.mov(by, 0u32);
    a.isetp(p, bx, tmr::scalar(2), CmpOp::Ge, true);
    a.loop_while(|a| {
        a.predicated(p, false, |a| {
            a.isub(bx, bx, tmr::scalar(2));
            a.iadd(by, by, 1u32);
        });
        a.isetp(p, bx, tmr::scalar(2), CmpOp::Ge, true);
        (p, false)
    });
    // After the loop: bx = remainder, by = quotient. Global tile origin:
    // rows = kb + (by+1)*B, cols = kb + (bx+1)*B.
    let (grow, gcol) = (a.reg(), a.reg());
    a.iadd(grow, by, 1u32);
    a.shl(grow, grow, B.trailing_zeros());
    a.iadd(grow, grow, tmr::scalar(1));
    a.iadd(gcol, bx, 1u32);
    a.shl(gcol, gcol, B.trailing_zeros());
    a.iadd(gcol, gcol, tmr::scalar(1));
    // s_a[ty][tx] = m[(kb+ty)*N + gcol + tx] (U strip).
    a.mov(v, tmr::scalar(1));
    a.iadd(v, v, Operand::Reg(ty));
    a.imul(v, v, N);
    a.iadd(v, v, Operand::Reg(gcol));
    a.iadd(v, v, Operand::Reg(tx));
    tmr::load_ptr(&mut a, addr, roff, 0);
    a.iscadd(addr, v, Operand::Reg(addr), 2);
    a.ld(t0, MemSpace::Global, addr, 0);
    a.shl(v, tid, 2u32);
    a.st(MemSpace::Shared, v, s_a as i32, t0);
    // s_b[ty][tx] = m[(grow+ty)*N + kb + tx] (L strip).
    a.iadd(v, grow, Operand::Reg(ty));
    a.imul(v, v, N);
    a.iadd(v, v, tmr::scalar(1));
    a.iadd(v, v, Operand::Reg(tx));
    tmr::load_ptr(&mut a, addr, roff, 0);
    a.iscadd(addr, v, Operand::Reg(addr), 2);
    a.ld(t0, MemSpace::Global, addr, 0);
    a.shl(v, tid, 2u32);
    a.st(MemSpace::Shared, v, s_b as i32, t0);
    a.bar();
    // acc = Σ_i s_b[ty][i] * s_a[i][tx]; m[target] -= acc.
    a.mov(acc, 0.0f32);
    for i in 0..B {
        a.shl(v, ty, B.trailing_zeros());
        a.iadd(v, v, i);
        a.shl(v, v, 2u32);
        a.ld(t0, MemSpace::Shared, v, s_b as i32);
        a.mov(v, i * B * 4);
        a.iscadd(v, tx, Operand::Reg(v), 2);
        a.ld(v, MemSpace::Shared, v, s_a as i32);
        a.ffma(acc, t0, Operand::Reg(v), Operand::Reg(acc));
    }
    a.iadd(v, grow, Operand::Reg(ty));
    a.imul(v, v, N);
    a.iadd(v, v, Operand::Reg(gcol));
    a.iadd(v, v, Operand::Reg(tx));
    tmr::load_ptr(&mut a, addr, roff, 0);
    a.iscadd(addr, v, Operand::Reg(addr), 2);
    a.ld(t0, MemSpace::Global, addr, 0);
    a.ffma(t0, acc, Operand::imm_f32(-1.0), Operand::Reg(t0));
    a.st(MemSpace::Global, addr, 0, t0);
    a.build().expect("lud_internal is well formed")
}

impl Benchmark for Lud {
    fn name(&self) -> &'static str {
        "LUD"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2", "K3"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let words = N * N;
        let bufs = ctl.alloc(&[words * 4]);
        let m = bufs[0];
        for i in 0..N {
            for j in 0..N {
                ctl.write_f32(m + (i * N + j) * 4, input(i, j));
            }
        }
        let k1 = kernel_diagonal();
        let k2 = kernel_perimeter();
        let k3 = kernel_internal();
        for k in 0..NB {
            let kb = k * B;
            ctl.launch(0, &k1, 1, B, vec![m, kb * N + kb])?;
            ctl.vote(0, &[(m, words)])?;
            let nbb = NB - 1 - k;
            if nbb > 0 {
                ctl.launch(1, &k2, nbb, 2 * B, vec![m, kb])?;
                ctl.vote(1, &[(m, words)])?;
                ctl.launch(2, &k3, nbb * nbb, B * B, vec![m, kb, nbb])?;
                ctl.vote(2, &[(m, words)])?;
            }
        }
        ctl.set_outputs(&[(m, words)]);
        Ok(())
    }
}

/// CPU reference mirroring the blocked algorithm's arithmetic order.
pub fn cpu_reference() -> Vec<f32> {
    let n = N as usize;
    let b = B as usize;
    let mut m: Vec<f32> = (0..N)
        .flat_map(|i| (0..N).map(move |j| input(i, j)))
        .collect();
    for k in 0..NB as usize {
        let kb = k * b;
        // Diagonal.
        for i in 0..b - 1 {
            let r = 1.0 / m[(kb + i) * n + kb + i];
            for t in i + 1..b {
                m[(kb + t) * n + kb + i] *= r;
            }
            for t in i + 1..b {
                let lti = m[(kb + t) * n + kb + i];
                for j in i + 1..b {
                    let uij = -m[(kb + i) * n + kb + j];
                    m[(kb + t) * n + kb + j] = lti.mul_add(uij, m[(kb + t) * n + kb + j]);
                }
            }
        }
        let nbb = NB as usize - 1 - k;
        if nbb == 0 {
            break;
        }
        // Row strips.
        for chunk in 0..nbb {
            let cb = kb + (chunk + 1) * b;
            for col in cb..cb + b {
                for i in 1..b {
                    let mut v = m[(kb + i) * n + col];
                    for j in 0..i {
                        let d = -m[(kb + i) * n + kb + j];
                        v = m[(kb + j) * n + col].mul_add(d, v);
                    }
                    m[(kb + i) * n + col] = v;
                }
            }
        }
        // Column strips.
        for chunk in 0..nbb {
            let rb = kb + (chunk + 1) * b;
            for row in rb..rb + b {
                for j in 0..b {
                    let mut v = m[row * n + kb + j];
                    for i in 0..j {
                        let d = -m[(kb + i) * n + kb + j];
                        v = m[row * n + kb + i].mul_add(d, v);
                    }
                    let r = 1.0 / m[(kb + j) * n + kb + j];
                    m[row * n + kb + j] = v * r;
                }
            }
        }
        // Internal tiles.
        let snapshot = m.clone();
        for byy in 0..nbb {
            for bxx in 0..nbb {
                let rb = kb + (byy + 1) * b;
                let cb = kb + (bxx + 1) * b;
                for ty in 0..b {
                    for tx in 0..b {
                        let mut acc = 0.0f32;
                        for i in 0..b {
                            acc = snapshot[(rb + ty) * n + kb + i]
                                .mul_add(snapshot[(kb + i) * n + cb + tx], acc);
                        }
                        let t = m[(rb + ty) * n + cb + tx];
                        m[(rb + ty) * n + cb + tx] = acc.mul_add(-1.0, t);
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&Lud, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                f32::from_bits(got),
                want,
                "cell {i} (r{} c{})",
                i / N as usize,
                i % N as usize
            );
        }
    }

    #[test]
    fn lu_reconstructs_the_input() {
        // Extract L (unit lower) and U from the in-place result and verify
        // L*U ≈ A — algebra-level validation independent of op ordering.
        let m = cpu_reference();
        let n = N as usize;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { m[i * n + k] as f64 };
                    let u = m[k * n + j] as f64;
                    if k <= j && k < i || k == i {
                        acc += l * u;
                    }
                }
                let want = input(i as u32, j as u32) as f64;
                assert!(
                    (acc - want).abs() < 1e-2 * want.abs().max(1.0),
                    "A[{i}][{j}]: {acc} vs {want}"
                );
            }
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&Lud, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&Lud, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        // K1 x4, K2 x3, K3 x3 launches.
        let count = |i| {
            t.records
                .iter()
                .filter(|r| r.kernel_idx == i && !r.is_vote)
                .count()
        };
        assert_eq!((count(0), count(1), count(2)), (4, 3, 3));
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&Lud, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&Lud, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
