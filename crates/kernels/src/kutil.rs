//! Small shared idioms for writing benchmark kernels.

use vgpu_arch::{CmpOp, KernelBuilder, Operand, Pred, Reg};

use crate::tmr;

/// Compute the global linear thread id into `gid` (clobbers `tmp`) and set
/// `p = gid < params[n_idx]` — the standard grid guard.
pub fn gid_guard(a: &mut KernelBuilder, gid: Reg, tmp: Reg, p: Pred, n_idx: u16) {
    a.linear_tid(gid, tmp);
    a.isetp(p, gid, tmr::scalar(n_idx), CmpOp::Lt, true);
}

/// `dst = (params[ptr_idx] + roff) + (index << shift)` — the address of
/// element `index` of a TMR-rebased device buffer.
pub fn elem_addr(a: &mut KernelBuilder, dst: Reg, roff: Reg, ptr_idx: u16, index: Reg, shift: u8) {
    assert_ne!(dst, index, "elem_addr clobbers dst before reading index");
    tmr::load_ptr(a, dst, roff, ptr_idx);
    a.iscadd(dst, index, Operand::Reg(dst), shift);
}

/// Deterministic pseudo-random `f32` in `[0, 1)` from an integer key —
/// used to generate benchmark inputs identically on every rebuild.
pub fn hash_f32(seed: u64, i: u64) -> f32 {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x >> 40) as f32 / (1u64 << 24) as f32
}

/// Deterministic pseudo-random `u32` in `[0, bound)`.
pub fn hash_u32(seed: u64, i: u64, bound: u32) -> u32 {
    let mut x = seed
        .wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        .wrapping_add(i.wrapping_mul(0x165667b19e3779f9));
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    (x as u32) % bound.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_f32_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let v = hash_f32(42, i);
            assert!((0.0..1.0).contains(&v), "{v}");
            assert_eq!(v, hash_f32(42, i));
        }
        assert_ne!(hash_f32(1, 0), hash_f32(2, 0));
    }

    #[test]
    fn hash_u32_respects_bound() {
        for i in 0..1000 {
            assert!(hash_u32(7, i, 13) < 13);
        }
        assert_eq!(hash_u32(7, 0, 1), 0);
    }

    #[test]
    fn gid_guard_emits_expected_shape() {
        let mut a = KernelBuilder::new("t");
        let (g, t) = (a.reg(), a.reg());
        let p = a.pred();
        gid_guard(&mut a, g, t, p, 3);
        let k = a.build().unwrap();
        assert_eq!(k.len(), 7); // 5 linear_tid + isetp + exit
        assert!(k.disassemble().contains("ISETP.LT.S32 P0"));
    }
}
