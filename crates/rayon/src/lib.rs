//! Vendored, dependency-free stand-in for `rayon`.
//!
//! The build sandbox has no crates.io access, so the workspace vendors the
//! subset of the `rayon` API the campaigns use: `into_par_iter()` /
//! `par_iter()` followed by `map`, then a terminal `reduce`, `for_each`,
//! `sum` or `collect`. Work is executed on real OS threads via
//! [`std::thread::scope`], chunked evenly over the available cores, so
//! campaigns still parallelize; there is simply no work stealing.
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Effective worker count.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Split `items` into at most `parts` contiguous chunks of near-equal size.
fn chunked<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let chunk = items.len().div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    while items.len() > chunk {
        let rest = items.split_off(chunk);
        out.push(std::mem::replace(&mut items, rest));
    }
    if !items.is_empty() {
        out.push(items);
    }
    out
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `ParIter` with a mapping function applied per item on the worker.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<F, R>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Send + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        self.map(f).reduce(|| (), |_, _| ());
    }
}

impl<T, F, R> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    /// Chain another map, composing the closures.
    pub fn map<G, S>(self, g: G) -> ParMap<T, impl Fn(T) -> S + Send + Sync>
    where
        G: Fn(R) -> S + Send + Sync,
        S: Send,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Parallel fold-and-combine. `identity` seeds each worker; `op` folds
    /// both within and across workers, so it must be associative (the
    /// campaigns only combine commutative counters).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Send + Sync,
        OP: Fn(R, R) -> R + Send + Sync,
    {
        let ParMap { items, f } = self;
        let workers = current_num_threads().min(items.len());
        if workers <= 1 {
            return items.into_iter().map(f).fold(identity(), op);
        }
        let f = &f;
        let op = &op;
        let identity = &identity;
        let partials: Vec<R> = std::thread::scope(|s| {
            let handles: Vec<_> = chunked(items, workers)
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().map(f).fold(identity(), op)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Order-preserving parallel collect.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParMap { items, f } = self;
        let workers = current_num_threads().min(items.len());
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let f = &f;
        let partials: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunked(items, workers)
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        partials.into_iter().flatten().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Send + Sync,
    {
        self.map(g).reduce(|| (), |_, _| ());
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + Send,
        R: Clone,
    {
        let parts: Vec<R> = self.collect();
        parts.into_iter().sum()
    }
}

/// `into_par_iter()` — entry point mirroring rayon's trait of the same name.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` over borrowed slices.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel in-place sorts over mutable slices (API subset of rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    /// Contiguous chunks are sorted on worker threads, then a final
    /// standard-library stable sort merges them — it detects the
    /// pre-sorted runs, so the merge pass is cheap rather than a fresh
    /// sort. Small inputs sort sequentially.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        const MIN_PAR_SORT: usize = 1 << 13;
        let threads = current_num_threads();
        if threads < 2 || self.len() < MIN_PAR_SORT {
            self.sort_unstable_by_key(|e| f(e));
            return;
        }
        let chunk = self.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in self.chunks_mut(chunk) {
                let f = &f;
                s.spawn(move || part.sort_unstable_by_key(|e| f(e)));
            }
        });
        self.sort_by_key(|e| f(e));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_reduce_matches_sequential() {
        let par: u64 = (0usize..10_000)
            .into_par_iter()
            .map(|i| (i as u64) * 3 + 1)
            .reduce(|| 0, |a, b| a + b);
        let seq: u64 = (0u64..10_000).map(|i| i * 3 + 1).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<u64> = (0usize..100)
            .into_par_iter()
            .map(|i| i as u64)
            .map(|x| x * x)
            .collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v[10], 100);
        assert_eq!(v[99], 99 * 99);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0usize..5000).into_par_iter().map(|i| i).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn for_each_runs_every_item() {
        let hits = AtomicU64::new(0);
        (0usize..2048).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2048);
    }

    #[test]
    fn par_iter_over_slices() {
        let data: Vec<u32> = (0..1000).collect();
        let sum: u64 = data
            .par_iter()
            .map(|&x| x as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, (0..1000u64).sum());
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Deterministic pseudo-random data, above and below the
        // sequential-fallback threshold.
        for n in [100usize, 40_000] {
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            let mut data: Vec<u64> = (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            data.par_sort_unstable_by_key(|&v| v);
            assert_eq!(data, expect, "n={n}");
        }
    }

    #[test]
    fn chunking_covers_all_items() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for parts in [1usize, 3, 8, 200] {
                let chunks = super::chunked((0..n).collect::<Vec<_>>(), parts);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            }
        }
    }
}
