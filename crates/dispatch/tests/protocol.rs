//! Wire-level fault-tolerance tests, driven by a hand-rolled fake worker
//! speaking raw frames over a real socket so every byte is under test
//! control:
//!
//! * a torn (truncated mid-line) trial record is dropped, the connection
//!   stays consistent, and the coordinator re-requests exactly the
//!   missing trial at `shard_done` time;
//! * two workers racing on a reassigned lease submit the same records
//!   twice — the merge dedupes and the assembled result still equals the
//!   single-shot run;
//! * no proper prefix of any frame parses as a (different) frame — the
//!   wire-side mirror of `crates/core/tests/proptest_plan.rs`'s
//!   torn-final-line recovery property.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use dispatch::proto::PROTO_VERSION;
use dispatch::{parse_frame, serve, CampaignSpec, DispatchCfg, Frame};
use proptest::prelude::*;
use relia::checkpoint::TrialRecord;
use relia::plan::Layer;
use relia::{execute_trials, records_fingerprint};
use vgpu_sim::HwStructure;

/// A scripted worker connection: raw line I/O, 5 s read timeout so a
/// coordinator bug fails the test instead of hanging it.
struct Conn {
    r: BufReader<TcpStream>,
    w: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let w = TcpStream::connect(addr).expect("connect");
        w.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        Conn {
            r: BufReader::new(w.try_clone().unwrap()),
            w,
        }
    }

    fn send_line(&mut self, line: &str) {
        self.w.write_all(line.as_bytes()).expect("send");
        self.w.write_all(b"\n").expect("send");
    }

    fn send(&mut self, f: &Frame) {
        self.send_line(&f.to_json());
    }

    fn recv(&mut self) -> Frame {
        let mut line = String::new();
        self.r.read_line(&mut line).expect("recv");
        parse_frame(line.trim_end_matches('\n'))
            .unwrap_or_else(|| panic!("unparseable frame {line:?}"))
    }

    /// Run the hello → job → ready handshake, returning the job.
    fn handshake(&mut self, name: &str) -> (CampaignSpec, usize, u64) {
        self.send(&Frame::Hello {
            worker: name.into(),
            proto: PROTO_VERSION,
            telemetry: String::new(),
        });
        let Frame::Job {
            spec,
            shards,
            fingerprint,
        } = self.recv()
        else {
            panic!("expected job frame");
        };
        self.send(&Frame::Ready { fingerprint });
        (spec, shards, fingerprint)
    }

    /// Poll until the coordinator grants a lease.
    fn await_lease(&mut self) -> (usize, Vec<usize>) {
        loop {
            match self.recv() {
                Frame::Lease { shard, done } => return (shard, done),
                Frame::Wait { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    self.send(&Frame::Poll);
                }
                f => panic!("expected lease/wait, got {f:?}"),
            }
        }
    }
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        app: "VA".into(),
        layer: Layer::Uarch,
        n: 2,
        seed: 0x70BD_0000_0000_0002,
        sms: 4,
        hardened: false,
        structures: None,
        fault_model: vgpu_sim::FaultPattern::SingleBit,
        backend: relia::EngineBackend::Timed,
        wave: None,
    }
}

fn run_all(spec: &CampaignSpec) -> Vec<TrialRecord> {
    let bench = spec.find_bench().unwrap();
    let prep = spec.prepare(bench.as_ref());
    let all: Vec<usize> = (0..prep.plan.len()).collect();
    execute_trials(&prep, &all, |_| Ok(())).unwrap()
}

#[test]
fn torn_trial_record_is_dropped_and_resent() {
    let spec = spec();
    let bench = spec.find_bench().unwrap();
    let prep = spec.prepare(bench.as_ref());
    let records = run_all(&spec);
    let cfg = DispatchCfg {
        shards: 1,
        lease: Duration::from_secs(10),
        wait_ms: 50,
        ..DispatchCfg::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());

    let outcome = std::thread::scope(|s| {
        let coordinator = s.spawn(|| serve(listener, &prep.plan, &spec, &cfg));
        let mut conn = Conn::connect(&addr);
        let (jspec, shards, _) = conn.handshake("torn");
        assert_eq!(jspec, spec, "job frame must round-trip the spec");
        assert_eq!(shards, 1);
        let (shard, done) = conn.await_lease();
        assert_eq!((shard, done.as_slice()), (0, &[][..]));

        // Stream the shard, but tear one record in half mid-line — the
        // wire equivalent of a connection dying mid-write.
        let victim = records[records.len() / 2].idx;
        for r in &records {
            let line = Frame::Trial(r.clone()).to_json();
            if r.idx == victim {
                conn.send_line(&line[..line.len() / 2]);
            } else {
                conn.send_line(&line);
            }
        }
        conn.send(&Frame::ShardDone { shard: 0 });
        // The coordinator noticed the hole and asks for exactly it.
        let Frame::Resend { shard: 0, missing } = conn.recv() else {
            panic!("expected resend for the torn record");
        };
        assert_eq!(missing, vec![victim], "exactly the torn trial re-requested");
        let line = Frame::Trial(records.iter().find(|r| r.idx == victim).unwrap().clone());
        conn.send(&line);
        conn.send(&Frame::ShardDone { shard: 0 });
        assert!(matches!(conn.recv(), Frame::Ack { shard: 0 }));
        assert!(matches!(conn.recv(), Frame::Shutdown));
        drop(conn);
        coordinator.join().unwrap().expect("serve")
    });

    assert_eq!(
        records_fingerprint(&outcome.records),
        records_fingerprint(&records),
        "torn + resent merge must equal single-shot"
    );
    assert!(outcome.stats.torn_frames >= 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.resend_requests, 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.duplicate_records, 0, "{:?}", outcome.stats);
}

#[test]
fn duplicate_submissions_from_racing_workers_dedupe() {
    let spec = spec();
    let bench = spec.find_bench().unwrap();
    let prep = spec.prepare(bench.as_ref());
    let records = run_all(&spec);
    let cfg = DispatchCfg {
        shards: 1,
        lease: Duration::from_millis(150),
        backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(100),
        wait_ms: 30,
        ..DispatchCfg::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());

    let half: Vec<&TrialRecord> = records.iter().filter(|r| r.idx % 2 == 0).collect();
    let rest: Vec<&TrialRecord> = records.iter().filter(|r| r.idx % 2 == 1).collect();

    let outcome = std::thread::scope(|s| {
        let coordinator = s.spawn(|| serve(listener, &prep.plan, &spec, &cfg));
        // Worker 1 takes the lease, submits half the shard, then stalls
        // (no heartbeats) until the lease expires.
        let mut w1 = Conn::connect(&addr);
        w1.handshake("racer-1");
        let (shard, done) = w1.await_lease();
        assert_eq!((shard, done.as_slice()), (0, &[][..]));
        for r in &half {
            w1.send(&Frame::Trial((*r).clone()));
        }
        std::thread::sleep(cfg.lease + Duration::from_millis(250));

        // Worker 2 is granted the reassigned lease, told which trials the
        // coordinator already holds (mid-shard resume).
        let mut w2 = Conn::connect(&addr);
        w2.handshake("racer-2");
        let (shard2, done2) = w2.await_lease();
        assert_eq!(shard2, 0);
        let mut held: Vec<usize> = half.iter().map(|r| r.idx).collect();
        held.sort_unstable();
        assert_eq!(done2, held, "resumed lease lists the records already held");

        // Worker 1 wakes up and races: re-submits its half and claims the
        // shard done. Every record is a duplicate; the claim is rejected
        // with a resend for the half it never ran — which proves the
        // connection state survived the duplicates.
        for r in &half {
            w1.send(&Frame::Trial((*r).clone()));
        }
        w1.send(&Frame::ShardDone { shard: 0 });
        let Frame::Resend { shard: 0, missing } = w1.recv() else {
            panic!("expected resend to the stale worker");
        };
        let mut want: Vec<usize> = rest.iter().map(|r| r.idx).collect();
        want.sort_unstable();
        assert_eq!(missing, want);

        // Worker 2 finishes the shard for real.
        for r in &rest {
            w2.send(&Frame::Trial((*r).clone()));
        }
        w2.send(&Frame::ShardDone { shard: 0 });
        assert!(matches!(w2.recv(), Frame::Ack { shard: 0 }));
        assert!(matches!(w2.recv(), Frame::Shutdown));
        drop(w2);
        drop(w1);
        coordinator.join().unwrap().expect("serve")
    });

    assert_eq!(
        records_fingerprint(&outcome.records),
        records_fingerprint(&records),
        "deduped racing merge must equal single-shot"
    );
    let stats = &outcome.stats;
    assert_eq!(stats.duplicate_records, half.len() as u64, "{stats:?}");
    assert_eq!(stats.leases_reassigned, 1, "{stats:?}");
    assert!(stats.leases_expired >= 1, "{stats:?}");
    assert_eq!(stats.shards_completed, 1, "{stats:?}");
}

/// Every frame ends in `}` and the parser requires a complete object, so
/// no proper prefix of a frame may parse — a torn line is always seen as
/// torn, never as a shorter valid frame.
fn assert_no_prefix_parses(f: &Frame) {
    let line = f.to_json();
    assert!(parse_frame(&line).is_some(), "frame itself parses: {line}");
    for cut in 0..line.len() {
        assert!(
            parse_frame(&line[..cut]).is_none(),
            "prefix {:?} of {line:?} must not parse",
            &line[..cut]
        );
    }
}

#[test]
fn no_control_frame_prefix_parses() {
    let spec = spec();
    for f in [
        Frame::Hello {
            worker: "w\"1\\".into(),
            proto: PROTO_VERSION,
            telemetry: "127.0.0.1:9090".into(),
        },
        Frame::Job {
            spec: CampaignSpec {
                structures: Some(vec![HwStructure::RegFile, HwStructure::L2]),
                ..spec.clone()
            },
            shards: 3,
            fingerprint: u64::MAX,
        },
        Frame::Ready { fingerprint: 1 },
        Frame::Lease {
            shard: 2,
            done: vec![1, 3, 5],
        },
        Frame::Wait { ms: 200 },
        Frame::Poll,
        Frame::Heartbeat { shard: 1, done: 9 },
        Frame::ShardDone { shard: 1 },
        Frame::Resend {
            shard: 1,
            missing: vec![7],
        },
        Frame::Ack { shard: 1 },
        Frame::Shutdown,
    ] {
        assert_no_prefix_parses(&f);
    }
}

fn outcome_of(tag: u8) -> kernels::Outcome {
    match tag % 4 {
        0 => kernels::Outcome::Masked,
        1 => kernels::Outcome::Sdc,
        2 => kernels::Outcome::Timeout,
        _ => kernels::Outcome::Due,
    }
}

proptest! {
    /// Arbitrary trial records: full line parses, no proper prefix does —
    /// the wire twin of `truncated_checkpoint_recovers_a_prefix`.
    #[test]
    fn no_trial_frame_prefix_parses(
        idx in any::<u32>(),
        out in any::<u8>(),
        ctrl in any::<bool>(),
        wall in any::<u32>(),
    ) {
        let f = Frame::Trial(TrialRecord {
            idx: idx as usize,
            outcome: outcome_of(out),
            ctrl,
            wall_us: wall as u64,
        });
        let line = f.to_json();
        prop_assert_eq!(parse_frame(&line), Some(f));
        for cut in 0..line.len() {
            prop_assert!(parse_frame(&line[..cut]).is_none(), "prefix {} parsed", &line[..cut]);
        }
    }

    /// Hello frames with arbitrary printable worker names (quotes and
    /// backslashes included): round-trip, and no prefix parses.
    #[test]
    fn no_hello_frame_prefix_parses(name_bytes in prop::collection::vec(0x20u8..0x7f, 0..16)) {
        let f = Frame::Hello {
            worker: String::from_utf8(name_bytes).unwrap(),
            proto: PROTO_VERSION,
            telemetry: "127.0.0.1:1".into(),
        };
        let line = f.to_json();
        prop_assert_eq!(parse_frame(&line), Some(f));
        for cut in 0..line.len() {
            prop_assert!(parse_frame(&line[..cut]).is_none(), "prefix {} parsed", &line[..cut]);
        }
    }
}
