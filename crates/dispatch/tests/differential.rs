//! The dispatch differential proof: for both injectors (uarch and sw) on
//! two benchmarks, three executions of the same plan must agree down to
//! the per-structure counts and derating factors —
//!
//! 1. single-shot in-process execution,
//! 2. a local 3-shard run merged with dedupe,
//! 3. a coordinator + 3 worker daemons over TCP, where the FIRST worker
//!    is killed mid-campaign (socket torn down after a few trials) and
//!    its lease is reassigned to a healthy worker.
//!
//! "Agree" is byte-level for everything the campaign defines: record
//! fingerprints, per-trial (idx, outcome, ctrl), and the fully assembled
//! `UarchAppResult`/`SvfAppResult` (whose `PartialEq` covers outcome
//! counts per structure and the FIT-derating factors).

use std::net::TcpListener;
use std::time::Duration;

use dispatch::{serve, work, CampaignSpec, DispatchCfg, WorkerCfg};
use relia::checkpoint::TrialRecord;
use relia::plan::Layer;
use relia::{
    assemble_sw, assemble_uarch, dedupe_records, execute_shard, execute_trials,
    records_fingerprint, EngineCfg,
};
use vgpu_sim::{FaultPattern, HwStructure};

fn spec_for(app: &str, layer: Layer, fault_model: FaultPattern) -> CampaignSpec {
    CampaignSpec {
        app: app.to_string(),
        layer,
        // uarch: n × 5 structures per kernel; sw: n × 2 fault kinds.
        n: match layer {
            Layer::Uarch => 4,
            Layer::Sw => 8,
        },
        seed: 0xD15C_4A11_0000_0001,
        sms: 4,
        hardened: false,
        structures: None,
        fault_model,
        backend: relia::EngineBackend::Timed,
        wave: None,
    }
}

fn key(r: &TrialRecord) -> (usize, kernels::Outcome, bool) {
    (r.idx, r.outcome, r.ctrl)
}

fn differential(app: &str, layer: Layer) {
    differential_pattern(app, layer, FaultPattern::SingleBit);
}

fn differential_pattern(app: &str, layer: Layer, fault_model: FaultPattern) {
    differential_spec(spec_for(app, layer, fault_model));
}

fn differential_spec(spec: CampaignSpec) {
    let app = spec.app.clone();
    let layer = spec.layer;
    let bench = spec.find_bench().expect("benchmark exists");
    let prep = spec.prepare(bench.as_ref());
    assert!(
        prep.plan.len() >= 9,
        "plan too small to exercise 3 shards with a mid-shard kill"
    );

    // 1. Single-shot reference.
    let all: Vec<usize> = (0..prep.plan.len()).collect();
    let single = execute_trials(&prep, &all, |_| Ok(())).expect("single-shot");

    // 2. Local 3-shard merge.
    let mut sharded = Vec::new();
    for i in 0..3 {
        sharded.extend(execute_shard(&prep, &EngineCfg::sharded(3, i)).expect("shard"));
    }
    let sharded = dedupe_records(&sharded).expect("no conflicts in a local merge");
    assert_eq!(
        records_fingerprint(&sharded),
        records_fingerprint(&single),
        "{app}/{}: local 3-shard merge must equal single-shot",
        layer.label()
    );

    // 3. Coordinator + 3 workers; the first one dies mid-campaign.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
    let cfg = DispatchCfg {
        shards: 3,
        lease: Duration::from_millis(300),
        backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(200),
        wait_ms: 50,
        out_dir: None,
        telemetry: None,
    };
    let healthy = WorkerCfg {
        heartbeat: Duration::from_millis(50),
        read_timeout: Duration::from_secs(30),
        ..WorkerCfg::default()
    };
    let outcome = std::thread::scope(|s| {
        let coordinator = s.spawn(|| serve(listener, &prep.plan, &spec, &cfg));
        // The doomed worker goes FIRST and alone, so it provably takes a
        // lease and dies holding it (2 < shard size, checked above).
        let doomed = work(
            &addr,
            &WorkerCfg {
                name: "doomed".into(),
                fail_after: Some(2),
                ..healthy.clone()
            },
        )
        .expect("doomed worker session");
        assert!(doomed.died_early, "fail_after must kill the worker");
        assert_eq!(doomed.trials_executed, 2);
        assert_eq!(doomed.shards_completed, 0);
        let w1 = s.spawn(|| {
            work(
                &addr,
                &WorkerCfg {
                    name: "w1".into(),
                    ..healthy.clone()
                },
            )
        });
        let w2 = s.spawn(|| {
            work(
                &addr,
                &WorkerCfg {
                    name: "w2".into(),
                    ..healthy.clone()
                },
            )
        });
        let outcome = coordinator.join().unwrap().expect("serve");
        w1.join().unwrap().expect("w1");
        w2.join().unwrap().expect("w2");
        outcome
    });

    let label = format!("{app}/{}", layer.label());
    assert_eq!(
        records_fingerprint(&outcome.records),
        records_fingerprint(&single),
        "{label}: dispatch merge must equal single-shot"
    );
    assert_eq!(outcome.records.len(), single.len());
    for (d, s) in outcome.records.iter().zip(&single) {
        assert_eq!(key(d), key(s), "{label}: per-trial outcomes must match");
    }
    let stats = &outcome.stats;
    assert_eq!(stats.shards_completed, 3, "{label}");
    assert!(
        stats.leases_reassigned >= 1,
        "{label}: the doomed worker's lease must be reassigned, stats: {stats:?}"
    );
    assert!(stats.workers_joined >= 3, "{label}: {stats:?}");

    // Assembled results: equality covers per-kernel, per-structure
    // outcome counts, AVF/SVF rates, and derating factors.
    match layer {
        Layer::Uarch => {
            let a = assemble_uarch(&prep, &single).unwrap();
            let b = assemble_uarch(&prep, &outcome.records).unwrap();
            let c = assemble_uarch(&prep, &sharded).unwrap();
            for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
                for h in HwStructure::ALL {
                    assert_eq!(
                        ka.counts_of(h),
                        kb.counts_of(h),
                        "{label}: per-structure counts must match for {}",
                        h.label()
                    );
                    assert_eq!(
                        ka.df_of(h).to_bits(),
                        kb.df_of(h).to_bits(),
                        "{label}: derating factors must be bit-identical for {}",
                        h.label()
                    );
                }
            }
            assert_eq!(a, b, "{label}: assembled dispatch result");
            assert_eq!(a, c, "{label}: assembled local-merge result");
        }
        Layer::Sw => {
            let a = assemble_sw(&prep, &single).unwrap();
            let b = assemble_sw(&prep, &outcome.records).unwrap();
            let c = assemble_sw(&prep, &sharded).unwrap();
            assert_eq!(a, b, "{label}: assembled dispatch result");
            assert_eq!(a, c, "{label}: assembled local-merge result");
        }
    }
}

#[test]
fn va_uarch_dispatch_equals_single_shot() {
    differential("VA", Layer::Uarch);
}

#[test]
fn va_sw_dispatch_equals_single_shot() {
    differential("VA", Layer::Sw);
}

#[test]
fn scp_uarch_dispatch_equals_single_shot() {
    differential("SCP", Layer::Uarch);
}

#[test]
fn scp_sw_dispatch_equals_single_shot() {
    differential("SCP", Layer::Sw);
}

// The non-default patterns must survive the same three-way differential:
// the pattern rides in the job frame, lands in the plan fingerprint, and
// every re-execution after a lease reassignment applies the same
// multi-bit footprint or re-asserted stuck cell.

// The adaptive differential: a CI-driven campaign whose every wave is
// farmed out to a coordinator + workers (with the first worker of wave 0
// killed mid-stream) must reproduce the single-shot adaptive run bit for
// bit — wave plans, record fingerprints, per-stratum intervals, and the
// convergence trajectory. The wave rides in the job frame; each worker
// re-expands the wave plan from (kernel, target, start, count) strata and
// proves it via the wave-tagged plan fingerprint.
#[test]
fn va_uarch_adaptive_dispatch_equals_single_shot() {
    use dispatch::{plan_strata, WaveSpec};
    use stat::{run_adaptive, run_adaptive_single, uarch_targets, AdaptiveCfg};

    let base = spec_for("VA", Layer::Uarch, FaultPattern::SingleBit);
    let bench = base.find_bench().expect("benchmark exists");
    let cfg = base.campaign_cfg();
    let acfg = AdaptiveCfg::new(0.15, 6, 24);

    let single = run_adaptive_single(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Uarch,
        &uarch_targets(),
        &acfg,
    )
    .expect("single-shot adaptive");
    assert!(single.waves >= 2, "config must produce a multi-wave run");

    let dcfg = DispatchCfg {
        shards: 3,
        lease: Duration::from_millis(300),
        backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(200),
        wait_ms: 50,
        out_dir: None,
        telemetry: None,
    };
    let healthy = WorkerCfg {
        heartbeat: Duration::from_millis(50),
        read_timeout: Duration::from_secs(30),
        ..WorkerCfg::default()
    };
    let dispatched = run_adaptive(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Uarch,
        &uarch_targets(),
        &acfg,
        |prep, wave| {
            let spec = CampaignSpec {
                wave: Some(WaveSpec {
                    wave,
                    strata: plan_strata(&prep.plan),
                }),
                ..base.clone()
            };
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
            let outcome = std::thread::scope(|s| {
                let coordinator = s.spawn(|| serve(listener, &prep.plan, &spec, &dcfg));
                if wave == 0 {
                    // Kill the first worker of the first wave while it
                    // holds a lease; its shard must be reassigned.
                    let doomed = work(
                        &addr,
                        &WorkerCfg {
                            name: "doomed".into(),
                            fail_after: Some(2),
                            ..healthy.clone()
                        },
                    )
                    .expect("doomed worker session");
                    assert!(doomed.died_early, "fail_after must kill the worker");
                }
                let workers: Vec<_> = ["w1", "w2"]
                    .iter()
                    .map(|name| {
                        let healthy = healthy.clone();
                        let addr = addr.clone();
                        s.spawn(move || {
                            work(
                                &addr,
                                &WorkerCfg {
                                    name: name.to_string(),
                                    ..healthy
                                },
                            )
                        })
                    })
                    .collect();
                let outcome = coordinator.join().unwrap().expect("serve wave");
                for w in workers {
                    w.join().unwrap().expect("worker session");
                }
                outcome
            });
            Ok(outcome.records)
        },
    )
    .expect("dispatched adaptive");

    assert_eq!(single, dispatched, "adaptive dispatch differential");
    assert_eq!(single.records_fp, dispatched.records_fp);
    assert_eq!(single.plans_fp, dispatched.plans_fp);
}

// Strata reconstruction from a wave plan must be exact — a worker that
// re-derives the plan from the reconstructed strata lands on the same
// fingerprint the coordinator computed.
#[test]
fn wave_plan_strata_round_trip_through_job_spec() {
    use dispatch::{plan_strata, WaveSpec};
    use relia::plan::{prepare_adaptive_wave, StratumSpec, TrialTarget};

    let base = spec_for("VA", Layer::Uarch, FaultPattern::SingleBit);
    let bench = base.find_bench().expect("benchmark exists");
    let cfg = base.campaign_cfg();
    let strata = vec![
        StratumSpec {
            kernel_idx: 0,
            target: TrialTarget::Structure(HwStructure::RegFile),
            start: 4,
            count: 6,
        },
        StratumSpec {
            kernel_idx: 0,
            target: TrialTarget::Structure(HwStructure::L2),
            start: 0,
            count: 3,
        },
    ];
    let prep = prepare_adaptive_wave(bench.as_ref(), &cfg, false, Layer::Uarch, &strata, 5);
    assert_eq!(plan_strata(&prep.plan), strata);
    let spec = CampaignSpec {
        wave: Some(WaveSpec {
            wave: 5,
            strata: plan_strata(&prep.plan),
        }),
        ..base
    };
    let reprep = spec.prepare(bench.as_ref());
    assert_eq!(reprep.plan.fingerprint(), prep.plan.fingerprint());
    assert_eq!(reprep.plan.trials, prep.plan.trials);
}

#[test]
fn va_uarch_replay_backend_dispatch_equals_single_shot() {
    // The workers run the replay backend (the spec field rides the job
    // frame); the single-shot reference stays timed, so this is the
    // cross-backend, cross-process equality the backend axis promises.
    differential_spec(CampaignSpec {
        backend: relia::EngineBackend::Replay,
        ..spec_for("VA", Layer::Uarch, FaultPattern::SingleBit)
    });
}

#[test]
fn va_uarch_double_adjacent_dispatch_equals_single_shot() {
    differential_pattern("VA", Layer::Uarch, FaultPattern::DoubleAdjacent);
}

#[test]
fn va_uarch_stuck_at_0_dispatch_equals_single_shot() {
    differential_pattern("VA", Layer::Uarch, FaultPattern::StuckAt0);
}

#[test]
fn va_sw_whole_entry_dispatch_equals_single_shot() {
    differential_pattern("VA", Layer::Sw, FaultPattern::WholeEntry);
}

#[test]
fn va_sw_stuck_at_1_dispatch_equals_single_shot() {
    differential_pattern("VA", Layer::Sw, FaultPattern::StuckAt1);
}
