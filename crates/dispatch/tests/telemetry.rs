//! Telemetry differential: a dispatched campaign with the full
//! observability stack on — coordinator telemetry server, worker
//! telemetry servers, trace capture and forwarding — must still merge
//! byte-identically to a single-shot run, and the endpoints it exposes
//! mid-campaign must serve lint-clean Prometheus exposition text and a
//! parseable `/status` fleet document.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use dispatch::{serve, work, CampaignSpec, DispatchCfg, TelemetryCfg, WorkerCfg};
use relia::plan::Layer;
use relia::{execute_trials, records_fingerprint};

fn wait_for_port(path: &std::path::Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Ok(text) = std::fs::read_to_string(path) {
            let port = text.trim();
            if !port.is_empty() {
                return format!("127.0.0.1:{port}");
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("telemetry port file {} never appeared", path.display());
}

#[test]
fn telemetry_preserves_bit_identical_merge_and_exposes_endpoints() {
    let spec = CampaignSpec {
        app: "VA".to_string(),
        layer: Layer::Uarch,
        n: 4,
        sms: 4,
        seed: 0x7E1E_AA11_0000_0002,
        hardened: false,
        structures: None,
        fault_model: vgpu_sim::FaultPattern::SingleBit,
        backend: relia::EngineBackend::Timed,
        wave: None,
    };
    let bench = spec.find_bench().expect("benchmark exists");
    let prep = spec.prepare(bench.as_ref());
    let all: Vec<usize> = (0..prep.plan.len()).collect();
    let single = execute_trials(&prep, &all, |_| Ok(())).expect("single-shot");

    let dir = std::env::temp_dir().join(format!("relia_telemetry_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let coord_pf = dir.join("coordinator-port.txt");
    let worker_pf = dir.join("worker-port.txt");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
    let cfg = DispatchCfg {
        shards: 3,
        lease: Duration::from_millis(500),
        backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(200),
        wait_ms: 50,
        out_dir: None,
        telemetry: Some(TelemetryCfg {
            listen: "127.0.0.1:0".to_string(),
            port_file: Some(coord_pf.clone()),
        }),
    };
    let wcfg = WorkerCfg {
        name: "tele-w1".into(),
        heartbeat: Duration::from_millis(50),
        read_timeout: Duration::from_secs(30),
        fail_after: None,
        telemetry: Some(TelemetryCfg {
            listen: "127.0.0.1:0".to_string(),
            port_file: Some(worker_pf.clone()),
        }),
        trace: true,
    };

    let outcome = std::thread::scope(|s| {
        let coordinator = s.spawn(|| serve(listener, &prep.plan, &spec, &cfg));

        // Scrape the coordinator BEFORE any worker joins: the campaign
        // cannot finish under us, so this is a guaranteed mid-run view.
        let tele_addr = wait_for_port(&coord_pf);
        let (code, metrics) =
            obs::http_get(&tele_addr, "/metrics", Duration::from_secs(2)).expect("GET /metrics");
        assert_eq!(code, 200);
        obs::expo::lint(&metrics).expect("mid-run /metrics must lint clean");
        let (code, status) =
            obs::http_get(&tele_addr, "/status", Duration::from_secs(2)).expect("GET /status");
        assert_eq!(code, 200);
        let doc = obs::parse_json(&status).expect("/status must parse as JSON");
        assert_eq!(
            doc.get("role").and_then(obs::JsonNode::as_str),
            Some("coordinator")
        );
        assert_eq!(
            doc.get("campaign_fp").and_then(obs::JsonNode::as_str),
            Some(format!("{:016x}", prep.plan.fingerprint()).as_str())
        );
        assert_eq!(
            doc.get("trials").and_then(obs::JsonNode::as_u64),
            Some(prep.plan.len() as u64)
        );
        assert_eq!(
            doc.get("done").and_then(obs::JsonNode::as_bool),
            Some(false)
        );
        let shard_detail = doc
            .get("shard_detail")
            .and_then(obs::JsonNode::as_arr)
            .expect("shard_detail array");
        assert_eq!(shard_detail.len(), 3);

        // Now run the fleet: one traced worker with its own telemetry
        // server, which the coordinator discovers via the hello frame.
        // Its server lives only while `work` runs, so scrape it from
        // here while the worker thread executes.
        let w = s.spawn(|| work(&addr, &wcfg));
        let worker_addr = wait_for_port(&worker_pf);
        let (code, wstatus) =
            obs::http_get(&worker_addr, "/status", Duration::from_secs(2)).expect("worker /status");
        assert_eq!(code, 200);
        let wdoc = obs::parse_json(&wstatus).expect("worker /status must parse");
        assert_eq!(
            wdoc.get("role").and_then(obs::JsonNode::as_str),
            Some("worker")
        );
        let summary = w.join().unwrap().expect("worker session");
        assert!(summary.shards_completed >= 1);
        coordinator.join().unwrap().expect("serve")
    });

    assert_eq!(
        records_fingerprint(&outcome.records),
        records_fingerprint(&single),
        "telemetry + trace must not change a single result bit"
    );
    assert_eq!(outcome.stats.shards_completed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
