//! The coordinator: owns the plan, leases shards, merges results.
//!
//! One accept loop (non-blocking, 20 ms tick) doubles as the lease
//! reaper; each accepted connection gets a handler thread under a
//! [`std::thread::scope`], so [`serve`] returns only after every handler
//! has drained. All shared state sits behind one mutex: a slot per
//! planned trial (dedupe by plan index) plus a state machine per shard:
//!
//! ```text
//!            grant                    all records held, journal fsynced
//! Pending ----------> Leased{conn, expires} ----------> Done
//!    ^                    |
//!    |   lease expired /  |
//!    +---- conn died -----+   (back off: min(backoff·2^(attempts-1), max))
//! ```
//!
//! Execution is at-least-once by design — an expired lease is simply
//! re-granted, and the slow first worker keeps streaming — so merge
//! safety comes from the slots: the first record for a plan index wins,
//! later duplicates must agree on (outcome, ctrl) or the campaign aborts
//! with [`DispatchError::Conflict`]. Trials are deterministic functions
//! of their planned seed, so honest duplicates always agree.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use obs::events::push_json_str;
use obs::{counter_add, emit_dispatch, gauge_set, DispatchEvent};
use relia::checkpoint::{CheckpointHeader, CheckpointWriter, TrialRecord};
use relia::plan::{shard_trials, CampaignPlan};

use crate::proto::{
    parse_frame, write_frame, CampaignSpec, Frame, Line, LineReader, PROTO_VERSION,
};
use crate::{DispatchError, TelemetryCfg};

/// Accept-loop tick: how often the coordinator scans for expired leases.
const ACCEPT_TICK: Duration = Duration::from_millis(20);
/// Per-connection read tick: how often a handler re-checks shared state
/// while waiting for the next frame.
const HANDLER_TICK: Duration = Duration::from_millis(50);
/// How long a handler lingers after sending `shutdown`, waiting for the
/// worker to hang up first (so the worker reads the frame, not a reset).
const FAREWELL_GRACE: Duration = Duration::from_secs(5);
/// How often the accept loop re-renders the `/status` fleet view (the
/// render scans every slot, so it runs well below the accept tick rate).
const STATUS_TICK: Duration = Duration::from_millis(250);
/// How often the scraper thread polls worker `/metrics` endpoints.
const SCRAPE_TICK: Duration = Duration::from_millis(500);
/// Per-worker scrape budget; a hung worker endpoint must not stall the
/// whole scrape round.
const SCRAPE_TIMEOUT: Duration = Duration::from_millis(250);

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct DispatchCfg {
    /// How many shards to cut the plan into (≥ 1; more shards than
    /// workers just means workers take several leases in turn).
    pub shards: usize,
    /// Lease duration; heartbeats renew it, silence past it reassigns.
    pub lease: Duration,
    /// Base delay before re-granting a shard whose lease was lost.
    pub backoff: Duration,
    /// Cap on the exponential reassignment backoff.
    pub max_backoff: Duration,
    /// How long workers are told to sleep when no shard is grantable.
    pub wait_ms: u64,
    /// Journal each completed shard here as a checkpoint file, fsynced
    /// *before* the shard is acked (crash-safe hand-off).
    pub out_dir: Option<PathBuf>,
    /// Mount `GET /metrics` + `GET /status` here while serving
    /// (docs/OBSERVABILITY.md). `None` = no telemetry server.
    pub telemetry: Option<TelemetryCfg>,
}

impl Default for DispatchCfg {
    fn default() -> Self {
        DispatchCfg {
            shards: 2,
            lease: Duration::from_secs(10),
            backoff: Duration::from_millis(250),
            max_backoff: Duration::from_secs(5),
            wait_ms: 200,
            out_dir: None,
            telemetry: None,
        }
    }
}

/// Counters a finished [`serve`] reports (mirrored into the `obs`
/// registry as `dispatch_*` metrics while running).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    pub workers_joined: u64,
    pub leases_granted: u64,
    /// Leases granted for a shard that had already been leased before.
    pub leases_reassigned: u64,
    /// Leases reclaimed (heartbeat silence or worker disconnect).
    pub leases_expired: u64,
    pub shards_completed: u64,
    /// Records received for a plan index that already had one.
    pub duplicate_records: u64,
    /// Torn or malformed wire lines dropped by the reader.
    pub torn_frames: u64,
    /// `resend` frames sent because a shard arrived with holes.
    pub resend_requests: u64,
}

/// What [`serve`] hands back once every shard is done.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One record per planned trial, sorted by plan index — the same
    /// vector a single-process [`relia::execute_trials`] over the full
    /// plan would produce (modulo wall-clock noise).
    pub records: Vec<TrialRecord>,
    pub stats: DispatchStats,
}

enum ShardState {
    Pending {
        not_before: Instant,
        attempts: u64,
    },
    Leased {
        conn: u64,
        worker: String,
        expires: Instant,
        attempts: u64,
    },
    Done,
}

struct State {
    slots: Vec<Option<TrialRecord>>,
    shards: Vec<ShardState>,
    stats: DispatchStats,
    done: bool,
    fatal: Option<DispatchError>,
}

struct Ctx<'a> {
    plan: &'a CampaignPlan,
    spec: &'a CampaignSpec,
    cfg: &'a DispatchCfg,
    /// Plan indices owned by each shard (strided cover, precomputed).
    shard_idxs: Vec<Vec<usize>>,
    fingerprint: u64,
    started: Instant,
    /// Workers that said hello: `(name, telemetry addr)` — addr may be
    /// empty when the worker mounts no telemetry server.
    workers: Mutex<Vec<(String, String)>>,
    state: Mutex<State>,
}

fn backoff_for(cfg: &DispatchCfg, attempts: u64) -> Duration {
    let shift = attempts.saturating_sub(1).min(16) as u32;
    cfg.backoff
        .saturating_mul(1u32 << shift)
        .min(cfg.max_backoff)
}

/// Run the coordinator until every shard of `plan` is complete.
///
/// `listener` is accepted as-is so callers can bind port 0 and publish
/// the chosen port before serving. Returns the merged record vector and
/// the run's statistics; fatal errors (conflicting duplicates, journal
/// I/O failures) abort the campaign.
pub fn serve(
    listener: TcpListener,
    plan: &CampaignPlan,
    spec: &CampaignSpec,
    cfg: &DispatchCfg,
) -> Result<ServeOutcome, DispatchError> {
    if cfg.shards == 0 {
        return Err(DispatchError::Spec("shards must be >= 1".into()));
    }
    let now = Instant::now();
    let shard_idxs: Vec<Vec<usize>> = (0..cfg.shards)
        .map(|i| shard_trials(plan.len(), cfg.shards, i))
        .collect();
    let shards: Vec<ShardState> = shard_idxs
        .iter()
        .map(|idxs| {
            if idxs.is_empty() {
                ShardState::Done
            } else {
                ShardState::Pending {
                    not_before: now,
                    attempts: 0,
                }
            }
        })
        .collect();
    let done = shards.iter().all(|s| matches!(s, ShardState::Done));
    let ctx = Ctx {
        plan,
        spec,
        cfg,
        shard_idxs,
        fingerprint: plan.fingerprint(),
        started: Instant::now(),
        workers: Mutex::new(Vec::new()),
        state: Mutex::new(State {
            slots: vec![None; plan.len()],
            shards,
            stats: DispatchStats::default(),
            done,
            fatal: None,
        }),
    };
    obs::trace::set_campaign_fp(ctx.fingerprint);
    // Lifecycle markers (serve_start/lease/shard_complete/complete) are
    // gated on the tracing switch; a coordinator with a live events sink
    // wants them in the timeline alongside the worker-forwarded records.
    if obs::events_enabled() {
        obs::trace::set_tracing(true);
    }
    obs::trace::emit_for("serve_start", 0, u64::MAX, 0);
    listener.set_nonblocking(true)?;
    let next_conn = AtomicU64::new(1);

    // Telemetry: the HTTP handlers need 'static content, so the accept
    // loop publishes the fleet view into shared strings the server reads.
    let status_doc = Arc::new(Mutex::new(String::from("{}")));
    let worker_metrics = Arc::new(Mutex::new(String::new()));
    let _telemetry = match &cfg.telemetry {
        None => None,
        Some(tcfg) => {
            let status = Arc::clone(&status_doc);
            let extra = Arc::clone(&worker_metrics);
            Some(crate::mount_telemetry(
                tcfg,
                obs::Handlers {
                    status: Box::new(move || status.lock().unwrap().clone()),
                    metrics_extra: Box::new(move || extra.lock().unwrap().clone()),
                },
            )?)
        }
    };

    std::thread::scope(|s| {
        if _telemetry.is_some() {
            // Scraper: poll every advertised worker /metrics and
            // re-export the series under worker="name" labels.
            let ctx = &ctx;
            let extra = Arc::clone(&worker_metrics);
            s.spawn(move || loop {
                if ctx.state.lock().unwrap().done {
                    break;
                }
                *extra.lock().unwrap() = scrape_workers(ctx);
                std::thread::sleep(SCRAPE_TICK);
            });
        }
        let mut last_status = Instant::now() - STATUS_TICK;
        loop {
            if ctx.state.lock().unwrap().done {
                break;
            }
            if _telemetry.is_some() && last_status.elapsed() >= STATUS_TICK {
                last_status = Instant::now();
                *status_doc.lock().unwrap() = render_status(&ctx);
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    let ctx = &ctx;
                    s.spawn(move || handle(conn, stream, ctx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    expire_leases(&ctx);
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) => {
                    let mut st = ctx.state.lock().unwrap();
                    st.fatal.get_or_insert(DispatchError::Io(e));
                    st.done = true;
                    break;
                }
            }
        }
        // Dropping out of the scope joins every handler; they all notice
        // `done` within one HANDLER_TICK and say goodbye to their worker.
    });
    // Final (post-completion) fleet view for pollers that race shutdown.
    if _telemetry.is_some() {
        *status_doc.lock().unwrap() = render_status(&ctx);
    }

    let st = ctx.state.into_inner().unwrap();
    if let Some(e) = st.fatal {
        return Err(e);
    }
    let mut records = Vec::with_capacity(st.slots.len());
    for (i, slot) in st.slots.into_iter().enumerate() {
        records.push(slot.ok_or_else(|| {
            DispatchError::Protocol(format!("campaign finished with no record for trial {i}"))
        })?);
    }
    emit_dispatch(&DispatchEvent {
        kind: "complete",
        worker: "",
        shard: 0,
        shards: cfg.shards as u64,
        attempt: 0,
        done: records.len() as u64,
        total: records.len() as u64,
    });
    obs::trace::emit_for("complete", 0, u64::MAX, 0);
    Ok(ServeOutcome {
        records,
        stats: st.stats,
    })
}

/// Render the coordinator's `/status` document: one JSON object with the
/// fleet view (`campaign status`/`campaign top` poll this). Scans every
/// slot, so it runs at [`STATUS_TICK`] rate, not per request. Also
/// refreshes the coordinator-side `dispatch_*` gauges so `/metrics`
/// moves in lockstep with `/status`.
fn render_status(ctx: &Ctx) -> String {
    let st = ctx.state.lock().unwrap();
    let now = Instant::now();
    let held_total = st.slots.iter().filter(|s| s.is_some()).count();
    let planned = st.slots.len();
    let elapsed = ctx.started.elapsed();
    let rate = if elapsed.as_secs_f64() > 0.0 {
        held_total as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let remaining = planned.saturating_sub(held_total);
    // No observed rate yet means no projection: `eta_ms` is omitted from
    // the document (status renderers print `eta --`) and the gauge is
    // left untouched rather than lying with a 0.
    let eta_ms: Option<u64> = if st.done {
        Some(0)
    } else if rate > 0.0 {
        Some((remaining as f64 / rate * 1000.0) as u64)
    } else {
        None
    };
    gauge_set("dispatch_records_held", &[], held_total as u64);
    gauge_set("dispatch_records_planned", &[], planned as u64);
    gauge_set("dispatch_record_rate_milli", &[], (rate * 1000.0) as u64);
    if let Some(ms) = eta_ms {
        gauge_set("dispatch_eta_ms", &[], ms);
    }
    gauge_set(
        "dispatch_workers_known",
        &[],
        ctx.workers.lock().unwrap().len() as u64,
    );

    let mut out = String::with_capacity(1024);
    out.push_str("{\"record\":\"dispatch_status\",\"role\":\"coordinator\"");
    out.push_str(",\"app\":");
    push_json_str(&mut out, &ctx.spec.app);
    out.push_str(",\"layer\":");
    push_json_str(&mut out, ctx.spec.layer.label());
    out.push_str(",\"campaign_fp\":");
    push_json_str(&mut out, &format!("{:016x}", ctx.fingerprint));
    out.push_str(&format!(
        ",\"shards\":{},\"trials\":{planned},\"records_held\":{held_total}",
        ctx.cfg.shards
    ));
    out.push_str(&format!(",\"records_per_s\":{rate:.3}"));
    if let Some(ms) = eta_ms {
        out.push_str(&format!(",\"eta_ms\":{ms}"));
    }
    out.push_str(&format!(",\"elapsed_ms\":{}", elapsed.as_millis()));
    out.push_str(&format!(",\"done\":{}", st.done));
    out.push_str(&format!(
        ",\"stats\":{{\"workers_joined\":{},\"leases_granted\":{},\"leases_reassigned\":{},\
         \"leases_expired\":{},\"shards_completed\":{},\"duplicate_records\":{},\
         \"torn_frames\":{},\"resend_requests\":{}}}",
        st.stats.workers_joined,
        st.stats.leases_granted,
        st.stats.leases_reassigned,
        st.stats.leases_expired,
        st.stats.shards_completed,
        st.stats.duplicate_records,
        st.stats.torn_frames,
        st.stats.resend_requests
    ));
    out.push_str(",\"shard_detail\":[");
    for (i, s) in st.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let held = ctx.shard_idxs[i]
            .iter()
            .filter(|&&t| st.slots[t].is_some())
            .count();
        let total = ctx.shard_idxs[i].len();
        out.push_str(&format!(
            "{{\"shard\":{i},\"held\":{held},\"total\":{total}"
        ));
        match s {
            ShardState::Pending {
                not_before,
                attempts,
            } => {
                let retry_in = not_before.saturating_duration_since(now).as_millis();
                out.push_str(&format!(
                    ",\"state\":\"pending\",\"attempts\":{attempts},\"retry_in_ms\":{retry_in}}}"
                ));
            }
            ShardState::Leased {
                worker,
                expires,
                attempts,
                ..
            } => {
                let expires_in = expires.saturating_duration_since(now);
                let hb_age = ctx.cfg.lease.saturating_sub(expires_in).as_millis();
                out.push_str(",\"state\":\"leased\",\"owner\":");
                push_json_str(&mut out, worker);
                out.push_str(&format!(
                    ",\"attempts\":{attempts},\"heartbeat_age_ms\":{hb_age},\
                     \"expires_in_ms\":{}}}",
                    expires_in.as_millis()
                ));
            }
            ShardState::Done => out.push_str(",\"state\":\"done\"}"),
        }
    }
    out.push_str("],\"workers\":[");
    for (i, (name, addr)) in ctx.workers.lock().unwrap().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, name);
        out.push_str(",\"telemetry\":");
        push_json_str(&mut out, addr);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Scrape every advertised worker `/metrics`, relabel each series with
/// `worker="name"`, and return the concatenated exposition text (appended
/// verbatim to the coordinator's own `/metrics` body — the lint accepts
/// per-worker label sets under a shared family). Unreachable workers are
/// skipped; a counter records the misses.
fn scrape_workers(ctx: &Ctx) -> String {
    let targets: Vec<(String, String)> = ctx
        .workers
        .lock()
        .unwrap()
        .iter()
        .filter(|(_, addr)| !addr.is_empty())
        .cloned()
        .collect();
    let mut out = String::new();
    for (name, addr) in targets {
        match obs::http_get(&addr, "/metrics", SCRAPE_TIMEOUT) {
            Ok((200, body)) => out.push_str(&obs::expo::inject_label(&body, "worker", &name)),
            Ok(_) | Err(_) => {
                counter_add("dispatch_scrape_failures_total", &[], 1);
            }
        }
    }
    out
}

/// Reclaim leases whose holder has gone silent past the lease duration.
fn expire_leases(ctx: &Ctx) {
    let mut st = ctx.state.lock().unwrap();
    if st.done {
        return;
    }
    let now = Instant::now();
    let expired: Vec<(usize, u64)> = st
        .shards
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            ShardState::Leased {
                expires, attempts, ..
            } if *expires <= now => Some((i, *attempts)),
            _ => None,
        })
        .collect();
    for (i, attempts) in expired {
        st.shards[i] = ShardState::Pending {
            not_before: now + backoff_for(ctx.cfg, attempts),
            attempts,
        };
        st.stats.leases_expired += 1;
        let held = ctx.shard_idxs[i]
            .iter()
            .filter(|&&t| st.slots[t].is_some())
            .count();
        counter_add("dispatch_lease_expiries_total", &[], 1);
        emit_dispatch(&DispatchEvent {
            kind: "lease_expired",
            worker: "",
            shard: i as u64,
            shards: ctx.cfg.shards as u64,
            attempt: attempts,
            done: held as u64,
            total: ctx.shard_idxs[i].len() as u64,
        });
    }
}

/// Release any lease still held by a departed connection (immediate
/// reclaim instead of waiting out the lease timer).
fn release_conn(ctx: &Ctx, conn: u64) {
    let mut st = ctx.state.lock().unwrap();
    let now = Instant::now();
    for i in 0..st.shards.len() {
        if let ShardState::Leased {
            conn: c, attempts, ..
        } = st.shards[i]
        {
            if c == conn {
                st.shards[i] = ShardState::Pending {
                    not_before: now + backoff_for(ctx.cfg, attempts),
                    attempts,
                };
                st.stats.leases_expired += 1;
                counter_add("dispatch_lease_expiries_total", &[], 1);
            }
        }
    }
}

enum Grant {
    Lease { shard: usize, done: Vec<usize> },
    Busy,
    AllDone,
}

fn try_grant(ctx: &Ctx, conn: u64, worker: &str) -> Grant {
    let mut st = ctx.state.lock().unwrap();
    if st.done {
        return Grant::AllDone;
    }
    let now = Instant::now();
    let pick = st
        .shards
        .iter()
        .position(|s| matches!(s, ShardState::Pending { not_before, .. } if *not_before <= now));
    let Some(shard) = pick else {
        return Grant::Busy;
    };
    let attempts = match st.shards[shard] {
        ShardState::Pending { attempts, .. } => attempts + 1,
        _ => unreachable!("picked a non-pending shard"),
    };
    st.shards[shard] = ShardState::Leased {
        conn,
        worker: worker.to_string(),
        expires: now + ctx.cfg.lease,
        attempts,
    };
    st.stats.leases_granted += 1;
    if attempts > 1 {
        st.stats.leases_reassigned += 1;
    }
    let done: Vec<usize> = ctx.shard_idxs[shard]
        .iter()
        .copied()
        .filter(|&t| st.slots[t].is_some())
        .collect();
    counter_add("dispatch_leases_total", &[], 1);
    emit_dispatch(&DispatchEvent {
        kind: "lease",
        worker,
        shard: shard as u64,
        shards: ctx.cfg.shards as u64,
        attempt: attempts,
        done: done.len() as u64,
        total: ctx.shard_idxs[shard].len() as u64,
    });
    obs::trace::emit_for("lease", shard as u64, u64::MAX, 0);
    Grant::Lease { shard, done }
}

/// Dedupe-insert one record. Returns `true` when the campaign must abort
/// (two records for one plan index disagree on the outcome).
fn insert_record(ctx: &Ctx, rec: TrialRecord) -> bool {
    let mut st = ctx.state.lock().unwrap();
    if rec.idx >= st.slots.len() {
        // A record for a trial the plan doesn't have can only be stream
        // corruption; drop it like a torn line and let resend repair.
        st.stats.torn_frames += 1;
        return false;
    }
    match &st.slots[rec.idx] {
        None => {
            st.slots[rec.idx] = Some(rec);
            false
        }
        Some(prev) => {
            let conflict = prev.outcome != rec.outcome || prev.ctrl != rec.ctrl;
            st.stats.duplicate_records += 1;
            counter_add("dispatch_duplicate_records_total", &[], 1);
            if conflict {
                st.fatal
                    .get_or_insert(DispatchError::Conflict { idx: rec.idx });
                st.done = true;
                true
            } else {
                false
            }
        }
    }
}

fn renew_lease(ctx: &Ctx, conn: u64, shard: usize) {
    let mut st = ctx.state.lock().unwrap();
    if let Some(ShardState::Leased {
        conn: c, expires, ..
    }) = st.shards.get_mut(shard)
    {
        if *c == conn {
            *expires = Instant::now() + ctx.cfg.lease;
        }
    }
}

enum DoneReply {
    Ack,
    Resend(Vec<usize>),
    Fatal,
}

/// Handle a worker's `shard_done` claim. Verifies every slot the shard
/// owns is filled (else: `resend`), journals the shard durably (fsync)
/// when an out_dir is configured, and only then marks it Done — so the
/// `ack` the caller sends never precedes stable storage.
fn complete_shard(ctx: &Ctx, shard: usize, worker: &str) -> DoneReply {
    let mut st = ctx.state.lock().unwrap();
    if matches!(st.shards[shard], ShardState::Done) {
        return DoneReply::Ack; // another worker won the race; ack is idempotent
    }
    let missing: Vec<usize> = ctx.shard_idxs[shard]
        .iter()
        .copied()
        .filter(|&t| st.slots[t].is_none())
        .collect();
    if !missing.is_empty() {
        st.stats.resend_requests += 1;
        counter_add("dispatch_resend_requests_total", &[], 1);
        return DoneReply::Resend(missing);
    }
    if let Some(dir) = &ctx.cfg.out_dir {
        let persist = || -> std::io::Result<()> {
            let header = CheckpointHeader::for_plan(ctx.plan, ctx.cfg.shards, shard);
            let path = dir.join(format!("shard-{shard}.jsonl"));
            let mut w = CheckpointWriter::create(&path, &header, usize::MAX)?;
            for &t in &ctx.shard_idxs[shard] {
                w.record(st.slots[t].as_ref().expect("verified above"))?;
            }
            w.finish() // flush + fsync — must precede the ack
        };
        if let Err(e) = persist() {
            st.fatal.get_or_insert(DispatchError::Io(e));
            st.done = true;
            return DoneReply::Fatal;
        }
    }
    st.shards[shard] = ShardState::Done;
    st.stats.shards_completed += 1;
    let done_shards = st
        .shards
        .iter()
        .filter(|s| matches!(s, ShardState::Done))
        .count();
    if done_shards == ctx.cfg.shards {
        st.done = true;
    }
    counter_add("dispatch_shards_completed_total", &[], 1);
    gauge_set("dispatch_shards_done", &[], done_shards as u64);
    emit_dispatch(&DispatchEvent {
        kind: "shard_complete",
        worker,
        shard: shard as u64,
        shards: ctx.cfg.shards as u64,
        attempt: 0,
        done: ctx.shard_idxs[shard].len() as u64,
        total: ctx.shard_idxs[shard].len() as u64,
    });
    obs::trace::emit_for("shard_complete", shard as u64, u64::MAX, 0);
    DoneReply::Ack
}

fn note_torn(ctx: &Ctx) {
    ctx.state.lock().unwrap().stats.torn_frames += 1;
    counter_add("dispatch_torn_frames_total", &[], 1);
}

/// Send `shutdown`, then linger until the worker hangs up (or a grace
/// period passes) so the frame is read before the socket dies.
fn farewell(stream: &mut TcpStream, lines: &mut LineReader) {
    if write_frame(stream, &Frame::Shutdown).is_err() {
        return;
    }
    let deadline = Instant::now() + FAREWELL_GRACE;
    while Instant::now() < deadline {
        match lines.next() {
            Ok(Line::Eof { .. }) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

fn handle(conn: u64, stream: TcpStream, ctx: &Ctx) {
    // Per-connection failures (bad handshake, worker I/O errors) drop the
    // connection; release_conn puts any lease it held back in play.
    let _ = handle_inner(conn, stream, ctx);
    release_conn(ctx, conn);
}

fn handle_inner(conn: u64, mut stream: TcpStream, ctx: &Ctx) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDLER_TICK))?;
    let mut lines = LineReader::new(stream.try_clone()?);

    // Handshake: hello → job → ready (with a matching fingerprint).
    let worker = loop {
        match lines.next()? {
            Line::Full(l) => match parse_frame(&l) {
                Some(Frame::Hello {
                    worker,
                    proto,
                    telemetry,
                }) if proto == PROTO_VERSION => {
                    let mut ws = ctx.workers.lock().unwrap();
                    match ws.iter_mut().find(|(n, _)| *n == worker) {
                        Some(entry) => entry.1 = telemetry,
                        None => ws.push((worker.clone(), telemetry)),
                    }
                    break worker;
                }
                _ => return Ok(()),
            },
            Line::Timeout => {
                if ctx.state.lock().unwrap().done {
                    farewell(&mut stream, &mut lines);
                    return Ok(());
                }
            }
            Line::Eof { .. } => return Ok(()),
        }
    };
    ctx.state.lock().unwrap().stats.workers_joined += 1;
    counter_add("dispatch_workers_joined_total", &[], 1);
    emit_dispatch(&DispatchEvent {
        kind: "worker_join",
        worker: &worker,
        shard: 0,
        shards: ctx.cfg.shards as u64,
        attempt: 0,
        done: 0,
        total: ctx.plan.len() as u64,
    });
    write_frame(
        &mut stream,
        &Frame::Job {
            spec: ctx.spec.clone(),
            shards: ctx.cfg.shards,
            fingerprint: ctx.fingerprint,
        },
    )?;
    loop {
        match lines.next()? {
            Line::Full(l) => match parse_frame(&l) {
                Some(Frame::Ready { fingerprint }) if fingerprint == ctx.fingerprint => break,
                // Mismatched plan or confused worker: it cannot safely
                // execute trials for us, so drop the connection.
                _ => return Ok(()),
            },
            Line::Timeout => {
                if ctx.state.lock().unwrap().done {
                    farewell(&mut stream, &mut lines);
                    return Ok(());
                }
            }
            Line::Eof { .. } => return Ok(()),
        }
    }

    'serve: loop {
        match try_grant(ctx, conn, &worker) {
            Grant::AllDone => {
                farewell(&mut stream, &mut lines);
                return Ok(());
            }
            Grant::Busy => write_frame(
                &mut stream,
                &Frame::Wait {
                    ms: ctx.cfg.wait_ms,
                },
            )?,
            Grant::Lease { shard, done } => {
                write_frame(&mut stream, &Frame::Lease { shard, done })?
            }
        }
        // Pump frames until this worker goes idle again (poll after a
        // wait, or ack after a completed shard).
        loop {
            match lines.next()? {
                Line::Timeout => {
                    let st = ctx.state.lock().unwrap();
                    let mine = st
                        .shards
                        .iter()
                        .any(|s| matches!(s, ShardState::Leased { conn: c, .. } if *c == conn));
                    if st.done && !mine {
                        drop(st);
                        farewell(&mut stream, &mut lines);
                        return Ok(());
                    }
                }
                Line::Eof { torn } => {
                    if torn {
                        note_torn(ctx);
                    }
                    return Ok(());
                }
                Line::Full(l) => match parse_frame(&l) {
                    None => note_torn(ctx),
                    Some(Frame::Trial(rec)) => {
                        if insert_record(ctx, rec) {
                            return Ok(()); // conflicting duplicate: campaign aborted
                        }
                    }
                    Some(Frame::Trace(ev)) => obs::trace::emit_event(ev),
                    Some(Frame::Heartbeat { shard, .. }) => renew_lease(ctx, conn, shard),
                    Some(Frame::Poll) => continue 'serve,
                    Some(Frame::ShardDone { shard }) => {
                        if shard >= ctx.cfg.shards {
                            return Ok(());
                        }
                        match complete_shard(ctx, shard, &worker) {
                            DoneReply::Ack => {
                                write_frame(&mut stream, &Frame::Ack { shard })?;
                                continue 'serve;
                            }
                            DoneReply::Resend(missing) => {
                                write_frame(&mut stream, &Frame::Resend { shard, missing })?
                            }
                            DoneReply::Fatal => return Ok(()),
                        }
                    }
                    // Frames that only flow coordinator → worker.
                    Some(_) => return Ok(()),
                },
            }
        }
    }
}
