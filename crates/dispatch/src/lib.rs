//! # dispatch — distributed campaign dispatch service
//!
//! A dependency-free (std::net TCP) coordinator + worker subsystem that
//! farms the shards of one deterministic fault-injection campaign out to
//! a fleet of worker daemons and merges their results **byte-identically**
//! to a single-process run — the networked layer on top of the
//! plan/execute/assemble engine in `crates/core` (docs/DISPATCH.md).
//!
//! * The **coordinator** ([`serve`]) expands the campaign into the same
//!   [`relia::plan::CampaignPlan`] every shard derives locally, leases
//!   strided shards to workers with expiring leases, and reassigns the
//!   shards of dead workers with exponential backoff. Incoming trial
//!   records are deduped by plan index, so at-least-once execution (two
//!   workers racing on a reassigned lease, a slow worker finishing after
//!   its lease expired) cannot change a single result bit.
//! * A **worker** ([`work`]) connects, rebuilds the plan from the job
//!   spec, verifies the plan fingerprint, and executes leased shards,
//!   streaming each classified trial back over the wire in the same JSONL
//!   record dialect the checkpoint files use — so a half-finished lease
//!   resumes mid-shard on reassignment (the coordinator tells the next
//!   worker which trials it already holds).
//!
//! The wire protocol ([`proto`]) is one flat JSON object per line,
//! written and parsed with the exact `obs::events` serializer/reader the
//! rest of the workspace uses. Torn frames (a connection dying mid-line)
//! are dropped by the reader; the shard-completion handshake re-requests
//! any records the coordinator is missing, so a torn frame costs one
//! round trip, never a wrong result.

pub mod coordinator;
pub mod proto;
pub mod worker;

pub use coordinator::{serve, DispatchCfg, DispatchStats, ServeOutcome};
pub use proto::{
    parse_frame, parse_strata, parse_structures, plan_strata, strata_spec, structures_spec,
    CampaignSpec, Frame, WaveSpec,
};
pub use worker::{work, WorkSummary, WorkerCfg};

use std::fmt;
use std::path::PathBuf;

/// Where a dispatch endpoint mounts its telemetry HTTP server
/// (`GET /metrics`, `GET /status` — docs/OBSERVABILITY.md).
#[derive(Debug, Clone)]
pub struct TelemetryCfg {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// `port_file` or the startup log line).
    pub listen: String,
    /// Write the bound port here (write-then-rename, so a waiting reader
    /// never observes a partial file).
    pub port_file: Option<PathBuf>,
}

/// Bind a telemetry server per `cfg` and publish the chosen port.
pub(crate) fn mount_telemetry(
    cfg: &TelemetryCfg,
    handlers: obs::Handlers,
) -> std::io::Result<obs::TelemetryServer> {
    // Mounting /metrics implies wanting metrics: turn the registry on so
    // the dispatch_* series actually move. Safe by the observability
    // invariant — metrics never touch the seeded RNG streams (the
    // telemetry differential test pins the bit-identical merge).
    obs::set_enabled(true);
    let server = obs::TelemetryServer::bind(&cfg.listen, handlers)?;
    if let Some(pf) = &cfg.port_file {
        let tmp = pf.with_extension("tmp");
        std::fs::write(&tmp, format!("{}\n", server.addr().port()))?;
        std::fs::rename(&tmp, pf)?;
    }
    Ok(server)
}

use relia::EngineError;

/// Why a dispatch endpoint gave up.
#[derive(Debug)]
pub enum DispatchError {
    Io(std::io::Error),
    /// The peer violated the wire protocol (unexpected frame, bad
    /// handshake, connection closed mid-conversation).
    Protocol(String),
    /// The job spec cannot be realized on this machine (unknown app).
    Spec(String),
    /// The worker's locally rebuilt plan disagrees with the coordinator's
    /// — different code revision, seed handling, or GPU configuration.
    FingerprintMismatch {
        ours: u64,
        theirs: u64,
    },
    /// Two records for the same plan index disagree on the outcome.
    Conflict {
        idx: usize,
    },
    Engine(EngineError),
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Io(e) => write!(f, "dispatch I/O error: {e}"),
            DispatchError::Protocol(why) => write!(f, "protocol error: {why}"),
            DispatchError::Spec(why) => write!(f, "job spec error: {why}"),
            DispatchError::FingerprintMismatch { ours, theirs } => write!(
                f,
                "plan fingerprint mismatch: local {ours:#018x} vs coordinator {theirs:#018x} \
                 (different code revision or configuration?)"
            ),
            DispatchError::Conflict { idx } => write!(
                f,
                "records for trial {idx} disagree on the outcome — \
                 nondeterministic worker or corrupt stream"
            ),
            DispatchError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Io(e)
    }
}

impl From<EngineError> for DispatchError {
    fn from(e: EngineError) -> Self {
        DispatchError::Engine(e)
    }
}
