//! The worker daemon: rebuild the plan, execute leased shards, stream
//! records back.
//!
//! A worker connects, introduces itself, receives the job spec, and
//! rebuilds the *entire* campaign plan locally — golden run included —
//! then proves it by echoing the plan fingerprint. From there it loops:
//! take a lease, execute the shard's still-missing trials with the same
//! parallel engine a local run uses ([`relia::execute_trials`]), stream
//! each classified record over the wire the moment it exists, and claim
//! `shard_done`. A heartbeat thread renews the lease while trials run,
//! so a lease only expires when the worker is actually gone.
//!
//! Every record the worker produced stays in an in-memory cache for the
//! duration of the session: if the coordinator lost lines to a torn
//! frame it answers `shard_done` with `resend`, and the worker replays
//! the missing records from cache instead of re-executing them.
//!
//! For fault-tolerance tests, [`WorkerCfg::fail_after`] makes the worker
//! die abruptly (socket torn down mid-stream, no goodbye) after N trial
//! records — a process SIGKILL without needing a process.

use std::io::ErrorKind;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use obs::counter_add;
use relia::checkpoint::TrialRecord;
use relia::plan::{shard_trials, PreparedCampaign};
use relia::{execute_trials_with, FastForward};

use crate::proto::{parse_frame, write_frame, Frame, Line, LineReader, PROTO_VERSION};
use crate::{DispatchError, TelemetryCfg};

/// Socket-level read tick; overall patience is [`WorkerCfg::read_timeout`].
const READ_TICK: Duration = Duration::from_millis(50);

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerCfg {
    /// Name reported in the hello frame (shows up in dispatch events).
    pub name: String,
    /// How often to renew the lease while executing trials. Must be
    /// comfortably below the coordinator's lease duration.
    pub heartbeat: Duration,
    /// Give up if the coordinator stays silent this long.
    pub read_timeout: Duration,
    /// Test hook: tear the connection down (no goodbye) after this many
    /// trial records have been streamed, emulating a SIGKILLed worker.
    pub fail_after: Option<usize>,
    /// Mount a local `GET /metrics` + `GET /status` server here and
    /// advertise its address in the hello frame so the coordinator
    /// scrapes and re-exports this worker's series. `None` = headless.
    pub telemetry: Option<TelemetryCfg>,
    /// Capture [`obs::TraceEvent`]s during execution and forward them to
    /// the coordinator as `trace` frames after each lease.
    pub trace: bool,
}

impl Default for WorkerCfg {
    fn default() -> Self {
        WorkerCfg {
            name: "worker".into(),
            heartbeat: Duration::from_millis(500),
            read_timeout: Duration::from_secs(30),
            fail_after: None,
            telemetry: None,
            trace: false,
        }
    }
}

/// What one worker session amounted to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkSummary {
    pub worker: String,
    /// Shards this worker drove to an `ack`.
    pub shards_completed: usize,
    /// Trial records streamed to the coordinator.
    pub trials_executed: usize,
    /// True when `fail_after` fired and the session died mid-stream.
    pub died_early: bool,
}

/// Read the next well-formed frame, dropping torn lines, within `patience`.
fn next_frame(lines: &mut LineReader, patience: Duration) -> Result<Frame, DispatchError> {
    let start = Instant::now();
    loop {
        match lines.next()? {
            Line::Full(l) => {
                if let Some(f) = parse_frame(&l) {
                    return Ok(f);
                }
                counter_add("dispatch_worker_torn_frames_total", &[], 1);
            }
            Line::Timeout => {
                if start.elapsed() >= patience {
                    return Err(DispatchError::Protocol(format!(
                        "coordinator silent for {patience:?}"
                    )));
                }
            }
            Line::Eof { .. } => {
                return Err(DispatchError::Protocol(
                    "connection closed by coordinator".into(),
                ))
            }
        }
    }
}

fn send(write: &Mutex<TcpStream>, frame: &Frame) -> std::io::Result<()> {
    write_frame(&mut write.lock().unwrap(), frame)
}

/// Connect to a coordinator at `addr` and work until it says shutdown.
///
/// Errors are local to this worker (the coordinator just reassigns its
/// leases): a spec it cannot realize, a plan fingerprint mismatch, a
/// dead connection. An injected `fail_after` death is reported as
/// `Ok` with [`WorkSummary::died_early`] set — the test harness treats
/// it as the expected outcome, not a failure.
pub fn work(addr: &str, cfg: &WorkerCfg) -> Result<WorkSummary, DispatchError> {
    // Mount the local telemetry server first so the hello frame can
    // advertise a live address for the coordinator to scrape.
    let telemetry = match &cfg.telemetry {
        None => None,
        Some(tcfg) => {
            // A worker with a live /status endpoint keeps the progress
            // counters moving so the document carries real trial counts
            // (execute_trials records per-injection outcomes only while
            // the reporter is on).
            obs::progress::enable();
            let name = cfg.name.clone();
            Some(crate::mount_telemetry(
                tcfg,
                obs::Handlers::status_only(move || worker_status(&name)),
            )?)
        }
    };
    if cfg.trace {
        obs::trace::set_tracing(true);
        obs::trace::set_capture(true);
        obs::trace::set_worker(&cfg.name);
    }

    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut lines = LineReader::new(stream.try_clone()?);
    let write = Mutex::new(stream);

    send(
        &write,
        &Frame::Hello {
            worker: cfg.name.clone(),
            proto: PROTO_VERSION,
            telemetry: telemetry
                .as_ref()
                .map(|t| t.addr().to_string())
                .unwrap_or_default(),
        },
    )?;
    let (spec, shards, theirs) = match next_frame(&mut lines, cfg.read_timeout)? {
        Frame::Job {
            spec,
            shards,
            fingerprint,
        } => (spec, shards, fingerprint),
        // Campaign already over: a clean zero-work session.
        Frame::Shutdown => {
            return Ok(WorkSummary {
                worker: cfg.name.clone(),
                shards_completed: 0,
                trials_executed: 0,
                died_early: false,
            })
        }
        f => {
            return Err(DispatchError::Protocol(format!(
                "expected job frame, got {f:?}"
            )))
        }
    };
    let bench = spec.find_bench().map_err(DispatchError::Spec)?;
    let prep = spec.prepare(bench.as_ref());
    // The dispatched backend is a throughput knob, not a plan property:
    // it rides outside the fingerprint, so mixed-backend fleets merge.
    let ff = FastForward {
        backend: spec.backend,
        ..FastForward::default()
    };
    let ours = prep.plan.fingerprint();
    if ours != theirs {
        return Err(DispatchError::FingerprintMismatch { ours, theirs });
    }
    send(&write, &Frame::Ready { fingerprint: ours })?;

    let executed = AtomicUsize::new(0);
    let died = AtomicBool::new(false);
    let cache: Mutex<Vec<TrialRecord>> = Mutex::new(Vec::new());
    let mut shards_completed = 0usize;

    loop {
        match next_frame(&mut lines, cfg.read_timeout)? {
            Frame::Shutdown => break,
            Frame::Wait { ms } => {
                std::thread::sleep(Duration::from_millis(ms.min(2_000)));
                send(&write, &Frame::Poll)?;
            }
            Frame::Lease { shard, done } => {
                let todo: Vec<usize> = shard_trials(prep.plan.len(), shards, shard)
                    .into_iter()
                    .filter(|i| !done.contains(i))
                    .collect();
                if cfg.trace {
                    obs::trace::set_shard(shard as u64);
                    obs::trace::set_campaign_fp(ours);
                    obs::trace::emit_for("lease_start", shard as u64, u64::MAX, 0);
                }
                run_lease(
                    &prep, ff, &todo, &write, cfg, shard, &executed, &died, &cache,
                )?;
                if cfg.trace && !died.load(Ordering::Acquire) {
                    // Forward everything captured during the lease; the
                    // coordinator re-emits the events into its own sink.
                    for ev in obs::trace::drain() {
                        send(&write, &Frame::Trace(ev))?;
                    }
                }
                if died.load(Ordering::Acquire) {
                    // Emulate SIGKILL: tear the socket down with records
                    // possibly still in flight, no shard_done, no goodbye.
                    let _ = write.lock().unwrap().shutdown(std::net::Shutdown::Both);
                    return Ok(WorkSummary {
                        worker: cfg.name.clone(),
                        shards_completed,
                        trials_executed: cache.lock().unwrap().len(),
                        died_early: true,
                    });
                }
                send(&write, &Frame::ShardDone { shard })?;
                // Await the ack, replaying any records lost to torn frames.
                loop {
                    match next_frame(&mut lines, cfg.read_timeout)? {
                        Frame::Ack { shard: s } if s == shard => {
                            shards_completed += 1;
                            counter_add("dispatch_worker_shards_total", &[], 1);
                            break;
                        }
                        Frame::Resend { shard: s, missing } if s == shard => {
                            let cached = cache.lock().unwrap();
                            for idx in &missing {
                                let Some(rec) = cached.iter().find(|r| r.idx == *idx) else {
                                    return Err(DispatchError::Protocol(format!(
                                        "coordinator wants trial {idx}, which this worker \
                                         never executed"
                                    )));
                                };
                                send(&write, &Frame::Trial(*rec))?;
                            }
                            drop(cached);
                            send(&write, &Frame::ShardDone { shard })?;
                        }
                        f => {
                            return Err(DispatchError::Protocol(format!(
                                "expected ack/resend for shard {shard}, got {f:?}"
                            )))
                        }
                    }
                }
            }
            f => {
                return Err(DispatchError::Protocol(format!(
                    "unexpected frame while idle: {f:?}"
                )))
            }
        }
    }

    let trials_executed = cache.lock().unwrap().len();
    Ok(WorkSummary {
        worker: cfg.name.clone(),
        shards_completed,
        trials_executed,
        died_early: false,
    })
}

/// Render a worker's `/status` document: local engine progress plus
/// per-injection wall-time quantiles from the global registry.
fn worker_status(name: &str) -> String {
    let (done, total, classes) = obs::progress::counts();
    let mut out = String::with_capacity(256);
    out.push_str("{\"record\":\"dispatch_status\",\"role\":\"worker\",\"name\":");
    obs::events::push_json_str(&mut out, name);
    out.push_str(&format!(",\"trials_done\":{done},\"trials_total\":{total}"));
    for (c, n) in obs::OutcomeClass::ALL.iter().zip(classes) {
        out.push_str(&format!(",\"{}\":{n}", c.label()));
    }
    // Cost-weighted throughput and replay adjudication counters: under
    // the replay backend, trial counts alone overstate progress (dead
    // trials are nearly free), so the status document also carries the
    // engine's simulated-cycle gauges when they are live.
    let snap = obs::global().snapshot();
    let gauge = |k: &str| {
        snap.gauges
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let prefix_sum = |p: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(k, _)| k.starts_with(p))
            .map(|&(_, v)| v)
            .sum()
    };
    let sim_done = gauge("campaign_sim_cycles_done");
    if sim_done > 0 {
        out.push_str(&format!(
            ",\"sim_cycles_done\":{sim_done},\"sim_cycles_per_s\":{:.1}",
            gauge("campaign_sim_cycle_rate_milli") as f64 / 1e3
        ));
    }
    let dead = prefix_sum("trace_replay_dead_total");
    let fell_back = prefix_sum("trace_fallback_full_total");
    if dead + fell_back > 0 {
        out.push_str(&format!(
            ",\"replay_dead\":{dead},\"replay_fallback\":{fell_back},\
             \"replay_warps_reexecuted\":{}",
            prefix_sum("trace_replay_warps_reexecuted_total")
        ));
    }
    match obs::progress::wall_quantiles() {
        Some((p50, p95)) => out.push_str(&format!(
            ",\"wall_p50_us\":{p50:.1},\"wall_p95_us\":{p95:.1}"
        )),
        None => out.push_str(",\"wall_p50_us\":null,\"wall_p95_us\":null"),
    }
    out.push_str(&format!(
        ",\"trace_dropped\":{},\"tracing\":{}}}",
        obs::trace::dropped(),
        obs::trace::tracing()
    ));
    out
}

/// Execute the lease's trials in parallel, streaming each record as it
/// is classified, with a heartbeat thread keeping the lease alive.
#[allow(clippy::too_many_arguments)]
fn run_lease(
    prep: &PreparedCampaign,
    ff: FastForward,
    todo: &[usize],
    write: &Mutex<TcpStream>,
    cfg: &WorkerCfg,
    shard: usize,
    executed: &AtomicUsize,
    died: &AtomicBool,
    cache: &Mutex<Vec<TrialRecord>>,
) -> Result<(), DispatchError> {
    let stop = AtomicBool::new(false);
    let streamed = AtomicU64::new(0);
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            let mut last = Instant::now();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(10));
                if last.elapsed() >= cfg.heartbeat {
                    last = Instant::now();
                    let hb = Frame::Heartbeat {
                        shard,
                        done: streamed.load(Ordering::Acquire),
                    };
                    if send(write, &hb).is_err() {
                        break;
                    }
                }
            }
        });
        let r = execute_trials_with(prep, ff, todo, |rec| {
            let k = executed.fetch_add(1, Ordering::AcqRel);
            if let Some(limit) = cfg.fail_after {
                if k >= limit {
                    died.store(true, Ordering::Release);
                    return Err(std::io::Error::new(
                        ErrorKind::BrokenPipe,
                        "injected worker failure (fail_after)",
                    ));
                }
            }
            cache.lock().unwrap().push(*rec);
            send(write, &Frame::Trial(*rec))?;
            streamed.fetch_add(1, Ordering::AcqRel);
            counter_add("dispatch_worker_trials_total", &[], 1);
            Ok(())
        });
        stop.store(true, Ordering::Release);
        r
    });
    match result {
        Ok(_) => Ok(()),
        // The injected death aborts execute_trials with an I/O error;
        // the caller reads `died` and reports it as a summary, not an Err.
        Err(_) if died.load(Ordering::Acquire) => Ok(()),
        Err(e) => Err(e.into()),
    }
}
