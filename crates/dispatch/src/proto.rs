//! Wire protocol: JSONL frames in the `obs::events` dialect.
//!
//! Every frame is one flat JSON object on one line. Control frames carry
//! a `"frame"` discriminator; trial results reuse the checkpoint record
//! shape (`"record":"trial"`, [`relia::checkpoint::TrialRecord`])
//! verbatim, so the bytes a worker streams over TCP are the bytes a
//! checkpoint file would hold and the coordinator can journal them with
//! [`relia::checkpoint::CheckpointWriter`] unchanged.
//!
//! ```text
//! W→C  {"frame":"hello","worker":"w1","proto":1}
//! C→W  {"frame":"job","app":"VA","layer":"uarch","n":60,"seed":7,...}
//! W→C  {"frame":"ready","fingerprint":123456789}
//! C→W  {"frame":"lease","shard":2,"done":"8,14"}
//! W→C  {"record":"trial","idx":20,"outcome":"masked","ctrl":false,...}
//! W→C  {"frame":"heartbeat","shard":2,"done":17}
//! W→C  {"frame":"shard_done","shard":2}
//! C→W  {"frame":"ack","shard":2}          (or {"frame":"resend",...})
//! C→W  {"frame":"shutdown"}
//! ```
//!
//! [`parse_frame`] returns `None` on any malformed line. Because every
//! frame ends in `}` and contains no `}` before its end, *no proper
//! prefix of a frame parses* — a torn line (connection died mid-write)
//! is always detected, never misread as a shorter valid frame (guarded
//! by a property test mirroring the torn-checkpoint-line tests).

use obs::events::{parse_line, push_json_str, JsonValue};
use relia::checkpoint::{parse_checkpoint_line, CheckpointLine, TrialRecord};
use relia::plan::{
    prepare_adaptive_wave, prepare_sw_campaign, prepare_uarch_campaign_structures, Layer,
    PreparedCampaign, StratumSpec, TrialTarget,
};
use relia::{CampaignCfg, EngineBackend};
use vgpu_sim::{FaultPattern, GpuConfig, HwStructure, SwFaultKind};

/// Bumped whenever a frame changes incompatibly; [`Frame::Hello`] carries
/// it and the coordinator rejects mismatched workers during the handshake.
pub const PROTO_VERSION: u64 = 1;

/// Parse a `--structures RF,SMEM,L2` list into [`HwStructure`]s
/// (case-insensitive labels, order preserved, duplicates dropped). The
/// canonical implementation for both the CLI and the job frame; the error
/// message names the offending label so callers can `exit(2)` with it.
pub fn parse_structures(spec: &str) -> Result<Vec<HwStructure>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let label = part.trim().to_ascii_uppercase();
        if label.is_empty() {
            continue;
        }
        let h = HwStructure::from_label(&label).ok_or_else(|| {
            format!("unknown structure {label:?} (known: RF, SMEM, L1D, L1T, L2, SIMT, SCHED)")
        })?;
        if !out.contains(&h) {
            out.push(h);
        }
    }
    if out.is_empty() {
        return Err(
            "--structures requires at least one of RF, SMEM, L1D, L1T, L2, SIMT, SCHED".into(),
        );
    }
    Ok(out)
}

/// Inverse of [`parse_structures`] for the job frame: `None` (all five
/// structures) serializes as the empty string.
pub fn structures_spec(structures: &Option<Vec<HwStructure>>) -> String {
    match structures {
        None => String::new(),
        Some(v) => v.iter().map(|h| h.label()).collect::<Vec<_>>().join(","),
    }
}

/// One adaptive wave of a CI-driven campaign: the still-unconverged
/// strata and their trial-ordinal windows. When a job frame carries a
/// wave the worker rebuilds the plan with
/// [`relia::plan::prepare_adaptive_wave`] instead of the fixed-n
/// planners; the wave index folds into the plan fingerprint, so the
/// handshake still proves both sides expanded the identical trial set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveSpec {
    pub wave: u64,
    pub strata: Vec<StratumSpec>,
}

/// Serialize wave strata for the job frame:
/// `kernel:TARGET:start:count;...` (target labels never contain `:` or
/// `;`). The inverse is [`parse_strata`].
pub fn strata_spec(strata: &[StratumSpec]) -> String {
    strata
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}",
                s.kernel_idx,
                s.target.label(),
                s.start,
                s.count
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parse a [`strata_spec`] string. Target labels resolve per `layer`
/// (structure labels for uarch, fault-kind labels for sw); `None` on any
/// malformed stratum or an empty list — a wave with no strata is
/// corruption, not a default.
pub fn parse_strata(spec: &str, layer: Layer) -> Option<Vec<StratumSpec>> {
    let mut out = Vec::new();
    for part in spec.split(';') {
        let mut it = part.split(':');
        let kernel_idx = it.next()?.parse().ok()?;
        let target = match layer {
            Layer::Uarch => TrialTarget::Structure(HwStructure::from_label(it.next()?)?),
            Layer::Sw => TrialTarget::Fault(SwFaultKind::from_label(it.next()?)?),
        };
        let start = it.next()?.parse().ok()?;
        let count = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        out.push(StratumSpec {
            kernel_idx,
            target,
            start,
            count,
        });
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

/// Reconstruct the stratum specs of an adaptive wave plan, in
/// first-appearance order. A wave plan lists each stratum's trials as
/// the consecutive ordinals `start..start + count`, so the specs are
/// fully recoverable — feeding them back through
/// [`relia::plan::prepare_adaptive_wave`] (as a worker does) re-expands
/// the identical plan.
pub fn plan_strata(plan: &relia::plan::CampaignPlan) -> Vec<StratumSpec> {
    let mut out: Vec<StratumSpec> = Vec::new();
    for t in &plan.trials {
        match out
            .iter_mut()
            .find(|s| s.kernel_idx == t.kernel_idx && s.target == t.target)
        {
            Some(s) => {
                s.start = s.start.min(t.trial);
                s.count += 1;
            }
            None => out.push(StratumSpec {
                kernel_idx: t.kernel_idx,
                target: t.target,
                start: t.trial,
                count: 1,
            }),
        }
    }
    out
}

/// Everything a worker needs to rebuild the coordinator's campaign plan
/// locally. Deliberately *excludes* watchdog limits: wall-clock limits
/// reclassify slow trials by machine speed, which would break the
/// byte-identical merge guarantee across heterogeneous workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    pub app: String,
    pub layer: Layer,
    /// Injections per (kernel, target) sub-campaign.
    pub n: usize,
    pub seed: u64,
    /// SM count of the simulated GPU ([`GpuConfig::volta_scaled`]).
    pub sms: u32,
    pub hardened: bool,
    /// Structure subset for uarch campaigns (`None` = all five).
    pub structures: Option<Vec<HwStructure>>,
    /// Fault pattern every trial applies (docs/FAULT_MODELS.md). Part of
    /// the plan fingerprint for non-default patterns, so a worker running
    /// a different model fails the handshake instead of merging garbage.
    pub fault_model: FaultPattern,
    /// Simulation backend the workers run ([`relia::EngineBackend`]).
    /// A pure throughput knob — classification is byte-identical either
    /// way — so it is *not* part of the plan fingerprint; heterogeneous
    /// backends across a fleet still merge. Absent on the wire for
    /// `Timed`, so legacy frames are byte-identical.
    pub backend: EngineBackend,
    /// `Some` for one wave of an adaptive campaign (`None` = the classic
    /// fixed-n plan; absent on the wire, so legacy frames are
    /// byte-identical).
    pub wave: Option<WaveSpec>,
}

impl CampaignSpec {
    /// The campaign configuration this spec describes (default watchdog:
    /// limits off, panic-retry on — the bit-reproducible setting).
    pub fn campaign_cfg(&self) -> CampaignCfg {
        let mut cfg = CampaignCfg::new(self.n, self.n, self.seed);
        cfg.gpu = GpuConfig::volta_scaled(self.sms);
        cfg.pattern = self.fault_model;
        cfg
    }

    /// Look up the benchmark by name (case-insensitive).
    pub fn find_bench(&self) -> Result<Box<dyn kernels::Benchmark>, String> {
        let mut all = kernels::all_benchmarks();
        match all
            .iter()
            .position(|b| b.name().eq_ignore_ascii_case(&self.app))
        {
            Some(i) => Ok(all.swap_remove(i)),
            None => {
                let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
                Err(format!(
                    "unknown app {:?}; available: {}",
                    self.app,
                    names.join(", ")
                ))
            }
        }
    }

    /// Run the golden execution and expand the deterministic trial plan —
    /// the worker-side mirror of what the coordinator prepared. Identical
    /// specs on identical code produce identical plan fingerprints; the
    /// handshake verifies exactly that.
    pub fn prepare<'a>(&self, bench: &'a dyn kernels::Benchmark) -> PreparedCampaign<'a> {
        let cfg = self.campaign_cfg();
        if let Some(w) = &self.wave {
            return prepare_adaptive_wave(
                bench,
                &cfg,
                self.hardened,
                self.layer,
                &w.strata,
                w.wave,
            );
        }
        match self.layer {
            Layer::Uarch => prepare_uarch_campaign_structures(
                bench,
                &cfg,
                self.hardened,
                self.structures.as_deref().unwrap_or(&HwStructure::ALL),
            ),
            Layer::Sw => prepare_sw_campaign(bench, &cfg, self.hardened),
        }
    }
}

/// One protocol frame (control frames plus streamed trial records).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker introduces itself after connecting. `telemetry` is the
    /// address of the worker's `/metrics` endpoint (`""` = none); the
    /// coordinator scrapes it and re-exports the series with a
    /// `worker=` label.
    Hello {
        worker: String,
        proto: u64,
        telemetry: String,
    },
    /// Coordinator describes the campaign; the worker rebuilds the plan.
    Job {
        spec: CampaignSpec,
        shards: usize,
        fingerprint: u64,
    },
    /// Worker confirms its locally derived plan fingerprint.
    Ready { fingerprint: u64 },
    /// Coordinator grants a shard lease; `done` lists the plan indices it
    /// already holds for this shard (mid-shard resume on reassignment).
    Lease { shard: usize, done: Vec<usize> },
    /// No shard available right now; poll again in `ms`.
    Wait { ms: u64 },
    /// Worker asks for work after a [`Frame::Wait`].
    Poll,
    /// Worker liveness while executing (also carries progress).
    Heartbeat { shard: usize, done: u64 },
    /// Worker believes the coordinator now holds the whole shard.
    ShardDone { shard: usize },
    /// Coordinator is missing these plan indices (torn frames) —
    /// the worker must re-send them and repeat [`Frame::ShardDone`].
    Resend { shard: usize, missing: Vec<usize> },
    /// Shard accepted and durably journaled.
    Ack { shard: usize },
    /// Campaign complete; the worker disconnects.
    Shutdown,
    /// One classified trial, in the checkpoint record shape.
    Trial(TrialRecord),
    /// One trace record forwarded worker → coordinator, in the
    /// `"record":"trace"` JSONL shape (docs/OBSERVABILITY.md), so the
    /// coordinator's event log holds the fleet-wide timeline.
    Trace(obs::TraceEvent),
}

fn idx_list(v: &[usize]) -> String {
    v.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_idx_list(s: &str) -> Option<Vec<usize>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|p| p.parse().ok()).collect()
}

impl Frame {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Frame::Hello {
                worker,
                proto,
                telemetry,
            } => {
                let mut s = String::from("{\"frame\":\"hello\",\"worker\":");
                push_json_str(&mut s, worker);
                s.push_str(&format!(",\"proto\":{proto},\"telemetry\":"));
                push_json_str(&mut s, telemetry);
                s.push('}');
                s
            }
            Frame::Job {
                spec,
                shards,
                fingerprint,
            } => {
                let mut s = String::from("{\"frame\":\"job\",\"app\":");
                push_json_str(&mut s, &spec.app);
                s.push_str(",\"layer\":");
                push_json_str(&mut s, spec.layer.label());
                s.push_str(",\"structures\":");
                push_json_str(&mut s, &structures_spec(&spec.structures));
                s.push_str(",\"fault_model\":");
                push_json_str(&mut s, spec.fault_model.label());
                if spec.backend != EngineBackend::Timed {
                    s.push_str(",\"backend\":");
                    push_json_str(&mut s, spec.backend.label());
                }
                if let Some(w) = &spec.wave {
                    s.push_str(&format!(",\"wave\":{},\"strata\":", w.wave));
                    push_json_str(&mut s, &strata_spec(&w.strata));
                }
                s.push_str(&format!(
                    ",\"n\":{},\"seed\":{},\"sms\":{},\"hardened\":{},\"shards\":{shards},\"fingerprint\":{fingerprint}}}",
                    spec.n, spec.seed, spec.sms, spec.hardened
                ));
                s
            }
            Frame::Ready { fingerprint } => {
                format!("{{\"frame\":\"ready\",\"fingerprint\":{fingerprint}}}")
            }
            Frame::Lease { shard, done } => {
                let mut s = format!("{{\"frame\":\"lease\",\"shard\":{shard},\"done\":");
                push_json_str(&mut s, &idx_list(done));
                s.push('}');
                s
            }
            Frame::Wait { ms } => format!("{{\"frame\":\"wait\",\"ms\":{ms}}}"),
            Frame::Poll => "{\"frame\":\"poll\"}".to_string(),
            Frame::Heartbeat { shard, done } => {
                format!("{{\"frame\":\"heartbeat\",\"shard\":{shard},\"done\":{done}}}")
            }
            Frame::ShardDone { shard } => {
                format!("{{\"frame\":\"shard_done\",\"shard\":{shard}}}")
            }
            Frame::Resend { shard, missing } => {
                let mut s = format!("{{\"frame\":\"resend\",\"shard\":{shard},\"missing\":");
                push_json_str(&mut s, &idx_list(missing));
                s.push('}');
                s
            }
            Frame::Ack { shard } => format!("{{\"frame\":\"ack\",\"shard\":{shard}}}"),
            Frame::Shutdown => "{\"frame\":\"shutdown\"}".to_string(),
            Frame::Trial(r) => r.to_json(),
            Frame::Trace(ev) => ev.to_json(),
        }
    }
}

/// Parse one wire line into a [`Frame`]. `None` on malformed input
/// (torn frames), unknown frame kinds, or a checkpoint *header* line
/// (which never travels over the wire).
pub fn parse_frame(line: &str) -> Option<Frame> {
    let fields = parse_line(line)?;
    let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let num = |k: &str| get(k).and_then(JsonValue::as_u64);
    let Some(kind) = get("frame").and_then(JsonValue::as_str) else {
        // Not a control frame: trace records, then the checkpoint
        // trial-record shape.
        if get("record").and_then(JsonValue::as_str) == Some("trace") {
            return obs::TraceEvent::from_fields(&fields).map(Frame::Trace);
        }
        return match parse_checkpoint_line(line)? {
            CheckpointLine::Trial(t) => Some(Frame::Trial(t)),
            CheckpointLine::Header(_) => None,
        };
    };
    match kind {
        "hello" => Some(Frame::Hello {
            worker: get("worker")?.as_str()?.to_string(),
            proto: num("proto")?,
            // Absent in frames from pre-telemetry workers: same proto
            // version, just no scrape endpoint to advertise.
            telemetry: get("telemetry")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
        }),
        "job" => {
            let structures_s = get("structures")?.as_str()?;
            let structures = if structures_s.is_empty() {
                None
            } else {
                Some(parse_structures(structures_s).ok()?)
            };
            let hardened = match get("hardened")? {
                JsonValue::Bool(b) => *b,
                _ => return None,
            };
            // Absent in frames from pre-pattern coordinators: those only
            // ever dispatched the paper's single-bit model.
            let fault_model = match get("fault_model").and_then(JsonValue::as_str) {
                None => FaultPattern::SingleBit,
                Some(l) => FaultPattern::from_label(l)?,
            };
            // Absent in frames from pre-replay coordinators: those only
            // ever dispatched the timed backend.
            let backend = match get("backend").and_then(JsonValue::as_str) {
                None => EngineBackend::Timed,
                Some(l) => EngineBackend::from_label(l)?,
            };
            let layer = Layer::from_label(get("layer")?.as_str()?)?;
            // Absent in frames from pre-adaptive coordinators (fixed-n
            // campaigns). A wave index without strata (or vice versa) is
            // a torn frame, not a legacy one.
            let wave = match (num("wave"), get("strata").and_then(JsonValue::as_str)) {
                (None, None) => None,
                (Some(w), Some(st)) => Some(WaveSpec {
                    wave: w,
                    strata: parse_strata(st, layer)?,
                }),
                _ => return None,
            };
            Some(Frame::Job {
                spec: CampaignSpec {
                    app: get("app")?.as_str()?.to_string(),
                    layer,
                    n: num("n")? as usize,
                    seed: num("seed")?,
                    sms: num("sms")? as u32,
                    hardened,
                    structures,
                    fault_model,
                    backend,
                    wave,
                },
                shards: num("shards")? as usize,
                fingerprint: num("fingerprint")?,
            })
        }
        "ready" => Some(Frame::Ready {
            fingerprint: num("fingerprint")?,
        }),
        "lease" => Some(Frame::Lease {
            shard: num("shard")? as usize,
            done: parse_idx_list(get("done")?.as_str()?)?,
        }),
        "wait" => Some(Frame::Wait { ms: num("ms")? }),
        "poll" => Some(Frame::Poll),
        "heartbeat" => Some(Frame::Heartbeat {
            shard: num("shard")? as usize,
            done: num("done")?,
        }),
        "shard_done" => Some(Frame::ShardDone {
            shard: num("shard")? as usize,
        }),
        "resend" => Some(Frame::Resend {
            shard: num("shard")? as usize,
            missing: parse_idx_list(get("missing")?.as_str()?)?,
        }),
        "ack" => Some(Frame::Ack {
            shard: num("shard")? as usize,
        }),
        "shutdown" => Some(Frame::Shutdown),
        _ => None,
    }
}

/// What one poll of a [`LineReader`] yielded.
#[derive(Debug)]
pub(crate) enum Line {
    /// One complete frame line (newline stripped).
    Full(String),
    /// The read timeout elapsed; any partial line stays buffered.
    Timeout,
    /// The peer closed the connection; `torn` means it died mid-line.
    Eof { torn: bool },
}

/// Newline-framed reader over a [`TcpStream`] with a read timeout.
///
/// A timeout can fire mid-line, so partial bytes persist in `buf`
/// across calls and a frame is only surfaced once its `\n` arrives —
/// the wire-side twin of the checkpoint reader's torn-tail handling.
pub(crate) struct LineReader {
    r: std::io::BufReader<std::net::TcpStream>,
    buf: String,
}

impl LineReader {
    pub fn new(stream: std::net::TcpStream) -> LineReader {
        LineReader {
            r: std::io::BufReader::new(stream),
            buf: String::new(),
        }
    }

    pub fn next(&mut self) -> std::io::Result<Line> {
        use std::io::BufRead;
        match self.r.read_line(&mut self.buf) {
            Ok(0) => Ok(Line::Eof {
                torn: !self.buf.is_empty(),
            }),
            Ok(_) => {
                if self.buf.ends_with('\n') {
                    let mut line = std::mem::take(&mut self.buf);
                    line.pop();
                    Ok(Line::Full(line))
                } else {
                    // read_line only returns without a newline at EOF.
                    Ok(Line::Eof { torn: true })
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(Line::Timeout)
            }
            Err(e) => Err(e),
        }
    }
}

/// Write one frame as a single `write_all` (line + newline in one
/// syscall-sized buffer, so concurrent writers never interleave bytes
/// as long as they serialize on the same lock).
pub(crate) fn write_frame(w: &mut std::net::TcpStream, frame: &Frame) -> std::io::Result<()> {
    use std::io::Write;
    let mut line = frame.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::Outcome;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            app: "VA".into(),
            layer: Layer::Uarch,
            n: 60,
            seed: 0xDEAD_BEEF_0102_0304,
            sms: 4,
            hardened: true,
            structures: Some(vec![HwStructure::RegFile, HwStructure::L2]),
            fault_model: FaultPattern::SingleBit,
            backend: EngineBackend::Timed,
            wave: None,
        }
    }

    fn wave() -> WaveSpec {
        WaveSpec {
            wave: 3,
            strata: vec![
                StratumSpec {
                    kernel_idx: 0,
                    target: TrialTarget::Structure(HwStructure::RegFile),
                    start: 16,
                    count: 8,
                },
                StratumSpec {
                    kernel_idx: 2,
                    target: TrialTarget::Structure(HwStructure::L2),
                    start: 0,
                    count: 4,
                },
            ],
        }
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = vec![
            Frame::Hello {
                worker: "w\"1\\".into(),
                proto: PROTO_VERSION,
                telemetry: "127.0.0.1:9102".into(),
            },
            Frame::Hello {
                worker: "plain".into(),
                proto: PROTO_VERSION,
                telemetry: String::new(),
            },
            Frame::Job {
                spec: spec(),
                shards: 6,
                fingerprint: u64::MAX - 1,
            },
            Frame::Job {
                spec: CampaignSpec {
                    structures: None,
                    layer: Layer::Sw,
                    hardened: false,
                    ..spec()
                },
                shards: 1,
                fingerprint: 7,
            },
            Frame::Job {
                spec: CampaignSpec {
                    fault_model: FaultPattern::StuckAt1,
                    structures: Some(vec![HwStructure::Simt, HwStructure::Sched]),
                    ..spec()
                },
                shards: 2,
                fingerprint: 8,
            },
            Frame::Job {
                spec: CampaignSpec {
                    wave: Some(wave()),
                    ..spec()
                },
                shards: 3,
                fingerprint: 9,
            },
            Frame::Job {
                spec: CampaignSpec {
                    layer: Layer::Sw,
                    structures: None,
                    wave: Some(WaveSpec {
                        wave: 0,
                        strata: vec![StratumSpec {
                            kernel_idx: 1,
                            target: TrialTarget::Fault(
                                SwFaultKind::from_label("dest_falu").unwrap(),
                            ),
                            start: 0,
                            count: 6,
                        }],
                    }),
                    ..spec()
                },
                shards: 1,
                fingerprint: 10,
            },
            Frame::Ready {
                fingerprint: u64::MAX,
            },
            Frame::Lease {
                shard: 2,
                done: vec![2, 8, 14],
            },
            Frame::Lease {
                shard: 0,
                done: vec![],
            },
            Frame::Wait { ms: 250 },
            Frame::Poll,
            Frame::Heartbeat { shard: 3, done: 41 },
            Frame::ShardDone { shard: 3 },
            Frame::Resend {
                shard: 3,
                missing: vec![9],
            },
            Frame::Ack { shard: 3 },
            Frame::Shutdown,
            Frame::Trial(TrialRecord {
                idx: 17,
                outcome: Outcome::Sdc,
                ctrl: false,
                wall_us: 950,
            }),
            Frame::Trace(obs::TraceEvent {
                kind: "faulty_run".into(),
                worker: "w1".into(),
                campaign_fp: u64::MAX - 3,
                shard: 2,
                trial: 17,
                t_us: 1_000_000,
                wall_us: 917,
            }),
        ];
        for f in frames {
            let line = f.to_json();
            assert_eq!(parse_frame(&line), Some(f.clone()), "frame {line}");
        }
    }

    #[test]
    fn malformed_and_foreign_lines_are_rejected() {
        assert!(parse_frame("").is_none());
        assert!(parse_frame("not json").is_none());
        assert!(parse_frame("{\"frame\":\"warp-drive\"}").is_none());
        assert!(parse_frame("{\"frame\":\"lease\",\"shard\":1,\"done\":\"1,x\"}").is_none());
        // A checkpoint *header* line never travels over the wire.
        let h = relia::CheckpointHeader {
            app: "VA".into(),
            layer: Layer::Uarch,
            seed: 1,
            hardened: false,
            n_per_target: 2,
            trials: 10,
            shards: 1,
            shard_index: 0,
            fingerprint: 3,
        };
        assert!(parse_frame(&h.to_json()).is_none());
    }

    #[test]
    fn hello_without_telemetry_field_still_parses() {
        assert_eq!(
            parse_frame("{\"frame\":\"hello\",\"worker\":\"old\",\"proto\":1}"),
            Some(Frame::Hello {
                worker: "old".into(),
                proto: 1,
                telemetry: String::new(),
            })
        );
    }

    #[test]
    fn job_without_fault_model_field_still_parses() {
        // A coordinator predating the pattern axis never sends the field;
        // the worker must assume the single-bit model, not reject the job.
        let line = "{\"frame\":\"job\",\"app\":\"VA\",\"layer\":\"uarch\",\
                    \"structures\":\"\",\"n\":4,\"seed\":9,\"sms\":4,\
                    \"hardened\":false,\"shards\":1,\"fingerprint\":5}";
        let Some(Frame::Job { spec, .. }) = parse_frame(line) else {
            panic!("legacy job frame must parse");
        };
        assert_eq!(spec.fault_model, FaultPattern::SingleBit);
        // An unknown pattern label is corruption, not a default.
        let bad = line.replace(
            "\"hardened\"",
            "\"fault_model\":\"warp-drive\",\"hardened\"",
        );
        assert!(parse_frame(&bad).is_none());
    }

    #[test]
    fn backend_field_round_trips_and_is_lenient_for_legacy_frames() {
        // A replay-backend job survives serialize → parse.
        let job = Frame::Job {
            spec: CampaignSpec {
                backend: EngineBackend::Replay,
                ..spec()
            },
            shards: 2,
            fingerprint: 21,
        };
        assert_eq!(parse_frame(&job.to_json()), Some(job.clone()));
        // A timed job never carries the field, byte for byte — old
        // workers keep parsing new coordinators' timed frames.
        let timed = Frame::Job {
            spec: spec(),
            shards: 2,
            fingerprint: 21,
        }
        .to_json();
        assert!(!timed.contains("backend"));
        // Absent field → timed (pre-replay coordinator)...
        let Some(Frame::Job { spec: parsed, .. }) = parse_frame(&timed) else {
            panic!("timed job frame must parse");
        };
        assert_eq!(parsed.backend, EngineBackend::Timed);
        // ...but an unknown backend label is corruption, not a default.
        let bad = timed.replace("\"hardened\"", "\"backend\":\"quantum\",\"hardened\"");
        assert!(parse_frame(&bad).is_none());
    }

    #[test]
    fn wave_extension_is_lenient_for_legacy_and_strict_for_torn_frames() {
        // A fixed-n job never carries wave fields, byte for byte — old
        // workers keep parsing new coordinators' fixed-n frames.
        let fixed = Frame::Job {
            spec: spec(),
            shards: 2,
            fingerprint: 11,
        }
        .to_json();
        assert!(!fixed.contains("wave") && !fixed.contains("strata"));
        // A wave index without strata (or strata without an index) is a
        // torn frame, never silently a fixed-n job.
        let adaptive = Frame::Job {
            spec: CampaignSpec {
                wave: Some(wave()),
                ..spec()
            },
            shards: 1,
            fingerprint: 12,
        }
        .to_json();
        assert!(parse_frame(&adaptive).is_some());
        assert!(parse_frame(&adaptive.replace(",\"wave\":3", "")).is_none());
        let strata = format!(",\"strata\":\"{}\"", strata_spec(&wave().strata));
        assert!(parse_frame(&adaptive.replace(&strata, "")).is_none());
        // Malformed strata: unknown target label, wrong field count,
        // empty list.
        assert!(parse_frame(&adaptive.replace("0:RF:16:8", "0:WARP:16:8")).is_none());
        assert!(parse_frame(&adaptive.replace("0:RF:16:8", "0:RF:16")).is_none());
        assert!(parse_frame(&adaptive.replace("0:RF:16:8;2:L2:0:4", "")).is_none());
        // A sw-layer stratum label must resolve as a fault kind, and the
        // labels round-trip through the wire encoding.
        assert_eq!(
            parse_strata("1:dest_falu:0:6", Layer::Sw).unwrap()[0]
                .target
                .label(),
            "dest_falu"
        );
        assert!(parse_strata("1:RF:0:6", Layer::Sw).is_none());
        assert_eq!(
            parse_strata(&strata_spec(&wave().strata), Layer::Uarch).unwrap(),
            wave().strata
        );
    }

    #[test]
    fn structures_spec_round_trips() {
        assert_eq!(structures_spec(&None), "");
        let some = Some(vec![HwStructure::Smem, HwStructure::L1T]);
        assert_eq!(
            parse_structures(&structures_spec(&some)).unwrap(),
            some.unwrap()
        );
        assert!(parse_structures("RF,WARP").is_err());
    }
}
