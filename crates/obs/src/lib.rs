//! # obs — observability for fault-injection campaigns
//!
//! A dependency-free metrics / events / profiling layer for the
//! statistical campaigns this repo runs (tens of thousands of independent
//! injections, fanned out over worker threads). Everything is built on
//! `std` atomics and mutexes; there is no crates.io dependency by design
//! (the build sandbox has no registry access).
//!
//! Four pieces, all behind a single process-global switch so disabled
//! campaigns pay one relaxed atomic load per call site:
//!
//! * [`registry`] — a thread-safe metrics registry: monotonic counters,
//!   gauges, and fixed-bucket histograms, keyed by metric name plus
//!   `key=value` labels (e.g. `app`/`kernel`/`structure`).
//! * [`span`] — phase timers. Campaign trials pass through the phases
//!   golden run → fault setup → faulty run → classification; totals are
//!   aggregated across rayon workers with atomics.
//! * [`events`] — a structured JSONL sink writing one line per injection
//!   (seed, app, kernel, target, bit, cycle, outcome, wall time). The
//!   serializer is hand-rolled; [`events::parse_line`] parses lines back
//!   for tests and post-hoc analysis.
//! * [`progress`] — a throttled stderr progress reporter with running
//!   outcome-class rates.
//!
//! Enabling any of this never changes campaign *results*: nothing here
//! touches the seeded RNG streams, so runs are bit-identical with
//! observability on or off (guarded by a test in `crates/core`).

pub mod events;
pub mod expo;
pub mod http;
pub mod progress;
pub mod registry;
pub mod span;
pub mod trace;

pub use events::{
    emit, emit_campaign, emit_dispatch, emit_snapshot, emit_wave, events_enabled, flush_events,
    init_events, parse_json, CampaignEvent, DispatchEvent, InjectionEvent, JsonNode, JsonValue,
    SnapshotEvent, WaveEvent,
};
pub use http::{http_get, Handlers, TelemetryServer};
pub use progress::OutcomeClass;
pub use registry::{
    counter_add, enabled, gauge_set, global, histogram_observe, set_enabled, Histogram,
    HistogramSnapshot, Registry, Snapshot,
};
pub use span::{phase_snapshot, time_phase, Phase, PhaseSnapshot};
pub use trace::{TraceCtx, TraceEvent};

/// Bucket upper bounds (µs) for injection wall-time histograms:
/// sub-millisecond through multi-second, roughly ×2.5 per step.
pub const WALL_US_BUCKETS: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Reset every global sub-system — intended for tests that need a clean
/// slate within one process.
pub fn reset_for_test() {
    registry::set_enabled(false);
    registry::global().clear();
    span::reset();
    progress::reset();
    trace::reset();
    events::shutdown_events();
}

/// Install a panic hook that flushes the JSONL event sink before the
/// previous hook (usually the default backtrace printer) runs. Without
/// it, a worker panicking mid-campaign loses the buffered event/trace
/// lines — exactly the lines needed to debug the panic. Idempotent.
pub fn install_panic_hook() {
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = events::flush_events();
            prev(info);
        }));
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Unit tests that touch the global switches/sinks grab this so they
    /// don't interleave under the parallel test runner.
    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
