//! Thread-safe metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Metrics are keyed by a canonical `name{k=v,...}` string. Handles
//! (`Arc<AtomicU64>` / `Arc<Histogram>`) can be cached by hot loops to
//! skip the map lookup; the convenience free functions
//! ([`counter_add`], [`gauge_set`], [`histogram_observe`]) look up per
//! call and no-op when the global switch is off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Master switch for the metrics registry (and the span timers, which
/// consult it too). Off by default: campaigns pay one relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Canonical metric key: `name` or `name{k=v,k2=v2}`.
fn key_of(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut k = String::with_capacity(name.len() + 16 * labels.len());
    k.push_str(name);
    k.push('{');
    for (i, (lk, lv)) in labels.iter().enumerate() {
        if i > 0 {
            k.push(',');
        }
        k.push_str(lk);
        k.push('=');
        k.push_str(lv);
    }
    k.push('}');
    k
}

/// A fixed-bucket histogram. `bounds` are inclusive upper bounds per
/// bucket; one extra overflow bucket catches everything above the last
/// bound. Observation is lock-free.
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. `v == bound` lands in that bucket
    /// (inclusive upper bounds, as in Prometheus `le`).
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| v > b);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate with linear interpolation inside the covering
    /// bucket (the Prometheus `histogram_quantile` model: observations
    /// spread uniformly between a bucket's lower and upper bound).
    /// `None` when the histogram is empty or the quantile lands in the
    /// overflow bucket, which has no upper bound to interpolate toward.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut acc = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            let prev = acc;
            acc += b;
            if acc as f64 >= target {
                let upper = *self.bounds.get(i)? as f64;
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                if b == 0 {
                    return Some(upper);
                }
                let frac = ((target - prev as f64) / b as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        None
    }

    /// Smallest bucket bound covering at least `q` (in [0,1]) of the
    /// observations; `None` when the quantile falls in the overflow
    /// bucket or the histogram is empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

/// Registry of counters, gauges and histograms. `BTreeMap` keeps
/// snapshots deterministically ordered.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get-or-create a counter handle (monotonic).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = key_of(name, labels);
        Arc::clone(self.counters.lock().unwrap().entry(key).or_default())
    }

    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.counter(name, labels).fetch_add(v, Ordering::Relaxed);
    }

    /// Get-or-create a gauge handle (last-write-wins).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = key_of(name, labels);
        Arc::clone(self.gauges.lock().unwrap().entry(key).or_default())
    }

    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.gauge(name, labels).store(v, Ordering::Relaxed);
    }

    /// Get-or-create a histogram. The bounds of the first registration
    /// win; later calls with different bounds get the existing histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let key = key_of(name, labels);
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    pub fn histogram_observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64], v: u64) {
        self.histogram(name, labels, bounds).observe(v);
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Drop every registered metric (tests).
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministically ordered point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

// ---- enabled-gated conveniences on the global registry ----------------

/// Add to a counter in the global registry; no-op while disabled.
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: u64) {
    if enabled() {
        global().counter_add(name, labels, v);
    }
}

/// Set a gauge in the global registry; no-op while disabled.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: u64) {
    if enabled() {
        global().gauge_set(name, labels, v);
    }
}

/// Observe into a histogram in the global registry; no-op while disabled.
pub fn histogram_observe(name: &str, labels: &[(&str, &str)], bounds: &[u64], v: u64) {
    if enabled() {
        global().histogram_observe(name, labels, bounds, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_canonical() {
        assert_eq!(key_of("m", &[]), "m");
        assert_eq!(key_of("m", &[("a", "1"), ("b", "x")]), "m{a=1,b=x}");
    }

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        r.counter_add("hits", &[("app", "VA")], 2);
        r.counter_add("hits", &[("app", "VA")], 3);
        r.counter_add("hits", &[("app", "NW")], 1);
        r.gauge_set("depth", &[], 7);
        r.gauge_set("depth", &[], 4);
        let s = r.snapshot();
        assert_eq!(s.counter("hits{app=VA}"), Some(5));
        assert_eq!(s.counter("hits{app=NW}"), Some(1));
        assert_eq!(s.gauges, vec![("depth".to_string(), 4)]);
        // Deterministic ordering (BTreeMap).
        assert_eq!(s.counters[0].0, "hits{app=NW}");
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::new(&[10, 20, 30]);
        h.observe(0); // -> bucket 0 (≤10)
        h.observe(10); // -> bucket 0 (inclusive bound)
        h.observe(11); // -> bucket 1 (≤20)
        h.observe(20); // -> bucket 1
        h.observe(30); // -> bucket 2 (≤30)
        h.observe(31); // -> overflow
        h.observe(u64::MAX / 2); // -> overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 0 + 10 + 11 + 20 + 30 + 31 + u64::MAX / 2);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new(&[1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 5] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 12.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.quantile_bound(0.5), Some(2));
        assert_eq!(s.quantile_bound(1.0), Some(8));
        h.observe(100); // overflow
        assert_eq!(h.snapshot().quantile_bound(1.0), None);
        assert_eq!(Histogram::new(&[1]).snapshot().quantile_bound(0.5), None);
    }

    #[test]
    fn histogram_interpolated_quantile() {
        let h = Histogram::new(&[10, 20, 40]);
        // 10 observations in (10,20]: quantiles interpolate linearly
        // across that bucket's span.
        for _ in 0..10 {
            h.observe(15);
        }
        let s = h.snapshot();
        assert!((s.quantile(0.0).unwrap() - 10.0).abs() < 1e-9);
        assert!((s.quantile(0.5).unwrap() - 15.0).abs() < 1e-9);
        assert!((s.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        // First bucket interpolates from 0.
        let h = Histogram::new(&[10, 20]);
        for _ in 0..4 {
            h.observe(5);
        }
        assert!((h.snapshot().quantile(0.5).unwrap() - 5.0).abs() < 1e-9);
        // Empty and overflow cases are None.
        assert_eq!(Histogram::new(&[1]).snapshot().quantile(0.5), None);
        let h = Histogram::new(&[1]);
        h.observe(100);
        assert_eq!(h.snapshot().quantile(0.99), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[5, 5]);
    }

    #[test]
    fn disabled_global_calls_are_noops() {
        let _guard = crate::testutil::lock();
        set_enabled(false);
        counter_add("ghost", &[], 1);
        gauge_set("ghost_g", &[], 1);
        histogram_observe("ghost_h", &[], &[1], 1);
        let s = global().snapshot();
        assert_eq!(s.counter("ghost"), None);
        assert!(!s.gauges.iter().any(|(k, _)| k == "ghost_g"));
        assert!(!s.histograms.iter().any(|(k, _)| k == "ghost_h"));
    }
}
