//! Throttled stderr progress reporter with running outcome-class rates.
//!
//! Campaigns register the expected trial count with [`add_total`] and
//! call [`record`] once per finished injection; the reporter prints at
//! most one line per second, e.g.:
//!
//! ```text
//! [obs]  3200/12800 (25.0%)  masked 71.2%  sdc 18.1%  due 6.4%  timeout 4.3%  | 2150 inj/s
//! ```
//!
//! Like the rest of the crate the reporter is off by default and its
//! disabled fast path is a single relaxed atomic load.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Outcome classes tracked by the running-rate display. Mirrors the
/// campaign `Outcome` enum in `crates/kernels` without depending on it
/// (obs sits below every other crate in the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    Masked = 0,
    Sdc = 1,
    Timeout = 2,
    Due = 3,
}

impl OutcomeClass {
    pub const ALL: [OutcomeClass; 4] = [
        OutcomeClass::Masked,
        OutcomeClass::Sdc,
        OutcomeClass::Timeout,
        OutcomeClass::Due,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            OutcomeClass::Masked => "masked",
            OutcomeClass::Sdc => "sdc",
            OutcomeClass::Timeout => "timeout",
            OutcomeClass::Due => "due",
        }
    }
}

static PROGRESS_ON: AtomicBool = AtomicBool::new(false);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static DONE: AtomicU64 = AtomicU64::new(0);
static CLASSES: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
/// Milliseconds since [`epoch`] of the last printed line (0 = never).
static LAST_PRINT_MS: AtomicU64 = AtomicU64::new(0);
/// Lines actually printed (observable by tests; stderr is invisible to
/// the test harness).
static PRINTS: AtomicU64 = AtomicU64::new(0);
/// Serializes actual printing so lines never interleave.
static PRINT_LOCK: Mutex<()> = Mutex::new(());

const THROTTLE_MS: u64 = 1_000;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turn the reporter on (and start its rate clock).
pub fn enable() {
    epoch();
    PROGRESS_ON.store(true, Ordering::Relaxed);
}

pub fn disable() {
    PROGRESS_ON.store(false, Ordering::Relaxed);
}

pub fn progress_enabled() -> bool {
    PROGRESS_ON.load(Ordering::Relaxed)
}

/// Announce `n` more expected trials (called once per sub-campaign).
pub fn add_total(n: u64) {
    TOTAL.fetch_add(n, Ordering::Relaxed);
}

/// Record one finished injection; prints a throttled status line.
pub fn record(class: OutcomeClass) {
    if !progress_enabled() {
        return;
    }
    CLASSES[class as usize].fetch_add(1, Ordering::Relaxed);
    let done = DONE.fetch_add(1, Ordering::Relaxed) + 1;
    // The last expected trial always prints, so a campaign finishing
    // inside the throttle window still gets its 100% line.
    let total = TOTAL.load(Ordering::Relaxed);
    maybe_print(done, total > 0 && done == total);
}

/// Print a final (unthrottled) status line and reset the throttle.
pub fn finish() {
    if !progress_enabled() {
        return;
    }
    maybe_print(DONE.load(Ordering::Relaxed), true);
}

fn maybe_print(done: u64, force: bool) {
    let now_ms = epoch().elapsed().as_millis() as u64;
    let last = LAST_PRINT_MS.load(Ordering::Relaxed);
    if !force && now_ms.saturating_sub(last) < THROTTLE_MS {
        return;
    }
    // One winner per throttle window; losers skip the print entirely.
    if LAST_PRINT_MS
        .compare_exchange(last, now_ms.max(1), Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
        && !force
    {
        return;
    }
    let _guard = PRINT_LOCK.lock().unwrap();
    let total = TOTAL.load(Ordering::Relaxed);
    let pct = |n: u64| {
        if done == 0 {
            0.0
        } else {
            100.0 * n as f64 / done as f64
        }
    };
    let mut line = String::with_capacity(128);
    line.push_str("[obs]  ");
    if total > 0 {
        line.push_str(&format!(
            "{done}/{total} ({:.1}%)",
            100.0 * done as f64 / total.max(1) as f64
        ));
    } else {
        line.push_str(&format!("{done} injections"));
    }
    for c in OutcomeClass::ALL {
        let n = CLASSES[c as usize].load(Ordering::Relaxed);
        line.push_str(&format!("  {} {:.1}%", c.label(), pct(n)));
    }
    if let Some((p50, p95)) = wall_quantiles() {
        line.push_str(&format!("  p50 {:.1}ms p95 {:.1}ms", p50 / 1e3, p95 / 1e3));
    }
    let secs = now_ms.max(1) as f64 / 1e3;
    line.push_str(&format!("  | {:.0} inj/s", done as f64 / secs));
    if total > 0 {
        match eta_secs(done, total, secs) {
            Some(eta) => line.push_str(&format!("  eta {eta:.0}s")),
            None => line.push_str("  eta --"),
        }
    }
    PRINTS.fetch_add(1, Ordering::Relaxed);
    let _ = writeln!(std::io::stderr(), "{line}");
}

/// Projected seconds to finish `total - done` trials at the observed
/// rate. `None` when no rate exists yet (zero trials done or a zero
/// clock) — callers must render that as `eta --`, never `inf`/NaN.
pub fn eta_secs(done: u64, total: u64, elapsed_secs: f64) -> Option<f64> {
    if done == 0 || elapsed_secs <= 0.0 {
        return None;
    }
    let rate = done as f64 / elapsed_secs;
    if rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None;
    }
    Some(total.saturating_sub(done) as f64 / rate)
}

/// p50/p95 per-injection wall time (µs), merged across every
/// `injection_wall_us{...}` series in the global registry. `None` when
/// metrics are off, no series exists yet, or the tail sits in the
/// overflow bucket. Also feeds the worker `/status` document.
pub fn wall_quantiles() -> Option<(f64, f64)> {
    if !crate::registry::enabled() {
        return None;
    }
    let snap = crate::registry::global().snapshot();
    let mut merged: Option<crate::registry::HistogramSnapshot> = None;
    for (k, h) in &snap.histograms {
        if !k.starts_with("injection_wall_us") {
            continue;
        }
        match &mut merged {
            None => merged = Some(h.clone()),
            Some(m) if m.bounds == h.bounds => {
                for (b, v) in m.buckets.iter_mut().zip(&h.buckets) {
                    *b += v;
                }
                m.count += h.count;
                m.sum += h.sum;
            }
            Some(_) => {}
        }
    }
    let m = merged?;
    Some((m.quantile(0.5)?, m.quantile(0.95)?))
}

/// Lines actually printed since the last [`reset`] (tests).
pub fn prints() -> u64 {
    PRINTS.load(Ordering::Relaxed)
}

/// Zero all progress state (tests).
pub fn reset() {
    disable();
    TOTAL.store(0, Ordering::Relaxed);
    DONE.store(0, Ordering::Relaxed);
    for c in &CLASSES {
        c.store(0, Ordering::Relaxed);
    }
    LAST_PRINT_MS.store(0, Ordering::Relaxed);
    PRINTS.store(0, Ordering::Relaxed);
}

/// Running totals: `(done, total, per-class counts in OutcomeClass order)`.
pub fn counts() -> (u64, u64, [u64; 4]) {
    let mut classes = [0u64; 4];
    for (i, c) in CLASSES.iter().enumerate() {
        classes[i] = c.load(Ordering::Relaxed);
    }
    (
        DONE.load(Ordering::Relaxed),
        TOTAL.load(Ordering::Relaxed),
        classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_record_is_noop() {
        let _guard = crate::testutil::lock();
        reset();
        record(OutcomeClass::Sdc);
        assert_eq!(counts(), (0, 0, [0, 0, 0, 0]));
    }

    #[test]
    fn enabled_record_accumulates() {
        let _guard = crate::testutil::lock();
        reset();
        enable();
        add_total(10);
        record(OutcomeClass::Masked);
        record(OutcomeClass::Masked);
        record(OutcomeClass::Sdc);
        record(OutcomeClass::Due);
        finish();
        let (done, total, classes) = counts();
        assert_eq!(done, 4);
        assert_eq!(total, 10);
        assert_eq!(classes, [2, 1, 0, 1]);
        reset();
    }

    #[test]
    fn final_trial_prints_inside_throttle_window() {
        let _guard = crate::testutil::lock();
        reset();
        enable();
        add_total(3);
        // All three records land well inside the 1 s throttle window;
        // only the done == total completion line may print, and it must.
        record(OutcomeClass::Masked);
        record(OutcomeClass::Sdc);
        assert_eq!(prints(), 0, "mid-run records stay throttled");
        record(OutcomeClass::Masked);
        assert_eq!(prints(), 1, "completion forces the 100% line");
        finish();
        assert_eq!(prints(), 2, "finish is never throttled");
        reset();
    }

    #[test]
    fn eta_is_guarded_against_zero_rate() {
        // No progress yet (or a zero clock): no ETA, never inf/NaN.
        assert_eq!(eta_secs(0, 100, 5.0), None);
        assert_eq!(eta_secs(10, 100, 0.0), None);
        assert_eq!(eta_secs(0, 0, 0.0), None);
        // Real progress projects finitely, and completion projects zero.
        let eta = eta_secs(25, 100, 5.0).unwrap();
        assert!(eta.is_finite() && (eta - 15.0).abs() < 1e-9);
        assert_eq!(eta_secs(100, 100, 5.0), Some(0.0));
        // Overshoot (done > total after a late add_total) saturates at 0.
        assert_eq!(eta_secs(120, 100, 5.0), Some(0.0));
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = OutcomeClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["masked", "sdc", "timeout", "due"]);
    }
}
