//! Prometheus text exposition over the metrics registry.
//!
//! Renders a [`Snapshot`](crate::registry::Snapshot) in the Prometheus
//! text format (version 0.0.4): `# TYPE` comments, `name{label="v"} N`
//! sample lines, and the three-part histogram encoding — cumulative
//! `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
//! `_count`. Registry keys are the canonical `name{k=v,...}` strings of
//! [`crate::registry`]; this module parses them back apart, sanitizes
//! names to the Prometheus identifier charset, and escapes label values.
//!
//! [`lint`] is the same grammar in reverse: it validates an exposition
//! body line by line (and checks histogram bucket monotonicity and
//! `+Inf`/`_count` agreement), so tests and the `campaign scrape`
//! subcommand can prove an endpoint emits well-formed output.

use std::collections::BTreeMap;

use crate::registry::Snapshot;

/// Split a canonical registry key (`name` or `name{k=v,k2=v2}`) into its
/// metric name and label pairs. Label *values* may contain anything
/// except `,`/`}` (registry keys are not escaped); names get sanitized
/// at render time.
pub fn split_key(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key.to_string(), Vec::new());
    };
    let name = key[..brace].to_string();
    let body = key[brace + 1..].trim_end_matches('}');
    let labels = body
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (p.to_string(), String::new()),
        })
        .collect();
    (name, labels)
}

/// Clamp a metric or label name to the Prometheus identifier grammar
/// `[a-zA-Z_][a-zA-Z0-9_]*` (`:` is reserved for recording rules, so we
/// exclude it): every invalid character becomes `_`, and a leading digit
/// gets an `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render one `{k="v",...}` label block (empty string when no labels).
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(labels.len() + extra.len());
    for (k, v) in extra {
        parts.push(format!(
            "{}=\"{}\"",
            sanitize_name(k),
            escape_label_value(v)
        ));
    }
    for (k, v) in labels {
        parts.push(format!(
            "{}=\"{}\"",
            sanitize_name(k),
            escape_label_value(v)
        ));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// A label block with one extra `le` pair appended (histogram buckets).
fn bucket_block(labels: &[(String, String)], extra: &[(&str, &str)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".to_string(), le.to_string()));
    label_block(&all, extra)
}

/// Render a whole registry snapshot in the Prometheus text format.
pub fn render(snap: &Snapshot) -> String {
    render_labeled(snap, &[])
}

/// [`render`] with extra label pairs stamped onto every sample — how a
/// coordinator re-exports a scraped worker registry under `worker="w1"`.
pub fn render_labeled(snap: &Snapshot, extra: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(4096);
    // Group samples by sanitized metric name so each family gets exactly
    // one `# TYPE` header even when several label sets share the name.
    let mut counters: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (key, v) in &snap.counters {
        let (name, labels) = split_key(key);
        let name = sanitize_name(&name);
        let line = format!("{name}{} {v}", label_block(&labels, extra));
        counters.entry(name).or_default().push(line);
    }
    for (name, lines) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n"));
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
    }
    let mut gauges: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (key, v) in &snap.gauges {
        let (name, labels) = split_key(key);
        let name = sanitize_name(&name);
        let line = format!("{name}{} {v}", label_block(&labels, extra));
        gauges.entry(name).or_default().push(line);
    }
    for (name, lines) in &gauges {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
    }
    let mut histograms: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (key, h) in &snap.histograms {
        let (name, labels) = split_key(key);
        let name = sanitize_name(&name);
        let mut lines = Vec::with_capacity(h.buckets.len() + 2);
        let mut cum = 0u64;
        for (i, count) in h.buckets.iter().enumerate() {
            cum += count;
            let le = match h.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            lines.push(format!(
                "{name}_bucket{} {cum}",
                bucket_block(&labels, extra, &le)
            ));
        }
        lines.push(format!(
            "{name}_sum{} {}",
            label_block(&labels, extra),
            h.sum
        ));
        lines.push(format!(
            "{name}_count{} {}",
            label_block(&labels, extra),
            h.count
        ));
        histograms.entry(name).or_default().append(&mut lines);
    }
    for (name, lines) in &histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------
// Exposition lint
// ---------------------------------------------------------------------

/// One parsed sample line: `(metric name, labels, value)`.
type Sample = (String, Vec<(String, String)>, f64);

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

/// Parse one exposition sample line. `Err` explains the grammar breach.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in {line:?}"))?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|_| format!("bad sample value {v:?} in {line:?}"))?,
    };
    let (name, labels) = match head.find('{') {
        None => (head.to_string(), Vec::new()),
        Some(i) => {
            let name = head[..i].to_string();
            let body = head[i..]
                .strip_prefix('{')
                .and_then(|b| b.strip_suffix('}'))
                .ok_or_else(|| format!("unbalanced label braces in {line:?}"))?;
            let mut labels = Vec::new();
            let mut rest = body;
            while !rest.is_empty() {
                let (k, after_eq) = rest
                    .split_once("=\"")
                    .ok_or_else(|| format!("label without =\" in {line:?}"))?;
                if !valid_name(k) {
                    return Err(format!("invalid label name {k:?} in {line:?}"));
                }
                // Scan to the closing unescaped quote.
                let mut val = String::new();
                let mut chars = after_eq.chars();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            _ => return Err(format!("bad escape in label value in {line:?}")),
                        },
                        c => val.push(c),
                    }
                }
                if !closed {
                    return Err(format!("unterminated label value in {line:?}"));
                }
                labels.push((k.to_string(), val));
                rest = chars.as_str();
                rest = rest.strip_prefix(',').unwrap_or(rest);
            }
            (name, labels)
        }
    };
    if !valid_name(&name) {
        return Err(format!("invalid metric name {name:?} in {line:?}"));
    }
    Ok((name, labels, value))
}

/// Validate a Prometheus text exposition body.
///
/// Checks, per line: every line is a `# TYPE`/`# HELP` comment or a
/// well-formed sample; `# TYPE` names are valid with a known type; and,
/// across the body, every histogram family has cumulative
/// (non-decreasing) bucket counts per label set, a `+Inf` bucket, and
/// `+Inf == _count`. Returns the number of sample lines on success.
pub fn lint(body: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut histogram_families: Vec<String> = Vec::new();
    // (family, non-le labels rendered canonically) -> bucket series state.
    #[derive(Default)]
    struct Buckets {
        last: f64,
        cum: Vec<(f64, f64)>, // (le, cumulative count)
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut buckets: BTreeMap<(String, String), Buckets> = BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("bare # TYPE: {line:?}"))?;
                    if !valid_name(name) {
                        return Err(format!("invalid # TYPE name {name:?}"));
                    }
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        t => return Err(format!("unknown metric type {t:?} in {line:?}")),
                    }
                }
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("bare # HELP: {line:?}"))?;
                    if !valid_name(name) {
                        return Err(format!("invalid # HELP name {name:?}"));
                    }
                }
                _ => {} // other comments are allowed free-form
            }
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                if let Some((name, "histogram")) = rest.split_once(' ') {
                    histogram_families.push(name.to_string());
                }
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line)?;
        samples += 1;
        for fam in &histogram_families {
            let series_key = |labels: &[(String, String)]| {
                labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            if let Some(stripped) = name.strip_suffix("_bucket") {
                if stripped == fam {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| format!("bucket without le label: {line:?}"))?;
                    let le_v: f64 = match le {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse()
                            .ok()
                            .filter(|f: &f64| !f.is_nan())
                            .ok_or_else(|| format!("non-numeric le {v:?} in {line:?}"))?,
                    };
                    let b = buckets
                        .entry((fam.clone(), series_key(&labels)))
                        .or_default();
                    if value < b.last {
                        return Err(format!(
                            "histogram {fam} buckets not cumulative at le={le}: \
                             {value} < {}",
                            b.last
                        ));
                    }
                    b.last = value;
                    b.cum.push((le_v, value));
                    if le_v.is_infinite() {
                        b.inf = Some(value);
                    }
                }
            } else if let Some(stripped) = name.strip_suffix("_count") {
                if stripped == fam {
                    buckets
                        .entry((fam.clone(), series_key(&labels)))
                        .or_default()
                        .count = Some(value);
                }
            }
        }
    }
    for ((fam, series), b) in &buckets {
        let inf = b
            .inf
            .ok_or_else(|| format!("histogram {fam}{{{series}}} missing +Inf bucket"))?;
        if let Some(count) = b.count {
            if inf != count {
                return Err(format!(
                    "histogram {fam}{{{series}}}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
        let mut sorted = b.cum.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        if sorted != b.cum {
            return Err(format!(
                "histogram {fam}{{{series}}}: buckets not in ascending le order"
            ));
        }
    }
    Ok(samples)
}

/// Stamp one extra label pair onto every sample line of an exposition
/// body — pure text surgery, used to re-export a worker's scraped
/// `/metrics` under `worker="name"` without re-parsing values.
pub fn inject_label(body: &str, key: &str, value: &str) -> String {
    let pair = format!("{}=\"{}\"", sanitize_name(key), escape_label_value(value));
    let mut out = String::with_capacity(body.len() + 32 * body.lines().count());
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let Some((head, value_part)) = line.rsplit_once(' ') else {
            out.push_str(line);
            out.push('\n');
            continue;
        };
        match head.find('{') {
            Some(i) => {
                // name{labels} -> name{pair,labels}
                out.push_str(&head[..=i]);
                out.push_str(&pair);
                if !head[i + 1..].starts_with('}') {
                    out.push(',');
                }
                out.push_str(&head[i + 1..]);
            }
            None => {
                out.push_str(head);
                out.push('{');
                out.push_str(&pair);
                out.push('}');
            }
        }
        out.push(' ');
        out.push_str(value_part);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn split_and_sanitize() {
        assert_eq!(split_key("m"), ("m".to_string(), vec![]));
        let (n, l) = split_key("hits{app=VA,kernel=K1}");
        assert_eq!(n, "hits");
        assert_eq!(
            l,
            vec![
                ("app".to_string(), "VA".to_string()),
                ("kernel".to_string(), "K1".to_string())
            ]
        );
        assert_eq!(sanitize_name("ok_name9"), "ok_name9");
        assert_eq!(sanitize_name("9lead"), "_9lead");
        assert_eq!(sanitize_name("a-b.c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter_add("hits", &[("app", "VA")], 3);
        r.counter_add("hits", &[("app", "NW")], 1);
        r.gauge_set("depth", &[], 7);
        r.histogram_observe("wall", &[("app", "VA")], &[10, 20], 5);
        r.histogram_observe("wall", &[("app", "VA")], &[10, 20], 15);
        r.histogram_observe("wall", &[("app", "VA")], &[10, 20], 99);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE hits counter\n"));
        assert!(text.contains("hits{app=\"NW\"} 1\n"));
        assert!(text.contains("hits{app=\"VA\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 7\n"));
        assert!(text.contains("# TYPE wall histogram\n"));
        assert!(text.contains("wall_bucket{app=\"VA\",le=\"10\"} 1\n"));
        assert!(text.contains("wall_bucket{app=\"VA\",le=\"20\"} 2\n"));
        assert!(text.contains("wall_bucket{app=\"VA\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("wall_sum{app=\"VA\"} 119\n"));
        assert!(text.contains("wall_count{app=\"VA\"} 3\n"));
        // 2 counter + 1 gauge + 3 buckets + _sum + _count = 8 samples.
        assert_eq!(lint(&text).unwrap(), 8);
    }

    #[test]
    fn render_labeled_stamps_extra_labels_first() {
        let r = Registry::new();
        r.counter_add("hits", &[("app", "VA")], 3);
        r.gauge_set("depth", &[], 7);
        let text = render_labeled(&r.snapshot(), &[("worker", "w1")]);
        assert!(text.contains("hits{worker=\"w1\",app=\"VA\"} 3\n"));
        assert!(text.contains("depth{worker=\"w1\"} 7\n"));
        lint(&text).unwrap();
    }

    #[test]
    fn lint_rejects_grammar_breaches() {
        assert!(lint("no_value\n").is_err());
        assert!(lint("1bad_name 3\n").is_err());
        assert!(lint("ok{unclosed=\"v} 3\n").is_err());
        assert!(lint("ok{k=v} 3\n").is_err(), "unquoted label value");
        assert!(lint("ok 3\n").is_ok());
        assert!(lint("ok{k=\"a,b\"} 3\nok{k=\"c\"} 4\n").is_ok());
        // Histogram without +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n";
        assert!(lint(bad).unwrap_err().contains("+Inf"));
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\n";
        assert!(lint(bad).unwrap_err().contains("cumulative"));
        // +Inf disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n";
        assert!(lint(bad).unwrap_err().contains("_count"));
    }

    #[test]
    fn inject_label_relabels_every_sample() {
        let body = "# TYPE a counter\na 1\nb{x=\"1\"} 2\nc{} 3\n";
        let out = inject_label(body, "worker", "w-1");
        assert!(out.contains("a{worker=\"w-1\"} 1\n"));
        assert!(out.contains("b{worker=\"w-1\",x=\"1\"} 2\n"));
        assert!(out.contains("c{worker=\"w-1\"} 3\n"));
        lint(&out).unwrap();
    }

    #[test]
    fn weird_registry_keys_render_lintably() {
        let r = Registry::new();
        r.counter_add("weird-metric.name", &[("bad key", "va\"lue\n2")], 1);
        r.counter_add("9starts_with_digit", &[], 2);
        let text = render(&r.snapshot());
        assert!(text.contains("weird_metric_name{bad_key=\"va\\\"lue\\n2\"} 1\n"));
        assert!(text.contains("_9starts_with_digit 2\n"));
        lint(&text).unwrap();
    }
}
