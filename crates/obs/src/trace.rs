//! Cross-process trace propagation for fleet campaigns.
//!
//! A [`TraceCtx`] identifies where work is happening — which campaign
//! (by plan fingerprint), which shard, which trial — and travels with
//! the work: the engine installs the trial coordinate around each
//! injection, the dispatch worker sets the shard per lease, and trace
//! records cross the wire as dispatch protocol frames so the
//! coordinator's event log holds a fleet-wide timeline.
//!
//! Records are JSONL [`TraceEvent`] lines (`"record":"trace"`, same
//! dialect as [`crate::events`]) with a kind (phase label or lifecycle
//! marker), the context coordinates, a start offset `t_us` relative to
//! this process's trace epoch, and a `wall_us` duration. The
//! `campaign timeline` tool reassembles them post hoc.
//!
//! Tracing shares the observability invariants: off by default (one
//! relaxed atomic load), and never touches the seeded RNG streams, so
//! campaign results are bit-identical with tracing on or off.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::events::{push_json_str, JsonValue};

/// Cap on the in-process capture buffer; past it, events are counted in
/// [`dropped`] instead of stored (a worker that never drains must not
/// grow without bound).
const CAPTURE_CAP: usize = 65_536;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static CAPTURE_ON: AtomicBool = AtomicBool::new(false);
static CAMPAIGN_FP: AtomicU64 = AtomicU64::new(0);
static SHARD: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static WORKER: Mutex<String> = Mutex::new(String::new());
static CAPTURE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Trial coordinate of the injection currently running on this
    /// thread (`u64::MAX` = no trial scope).
    static TRIAL: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Where work is happening: campaign (plan fingerprint), shard, trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub campaign_fp: u64,
    pub shard: u64,
    /// Trial index within the plan (`u64::MAX` outside any trial).
    pub trial: u64,
}

/// One trace record: a phase timing or lifecycle marker with its
/// [`TraceCtx`] coordinates attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Phase label (`"faulty_run"`, ...) or lifecycle marker
    /// (`"lease_start"`, `"shard_done"`, `"merge"`, ...).
    pub kind: String,
    /// Worker name (`""` when the process has not been named).
    pub worker: String,
    pub campaign_fp: u64,
    pub shard: u64,
    /// Trial index (`u64::MAX` = not tied to one trial).
    pub trial: u64,
    /// Event start, microseconds since the emitting process's trace
    /// epoch (first trace activity). Offsets are per-process clocks;
    /// the timeline tool orders within a worker, not across them.
    pub t_us: u64,
    /// Duration, microseconds (0 for point markers).
    pub wall_us: u64,
}

impl TraceEvent {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"record\":\"trace\",\"kind\":");
        push_json_str(&mut s, &self.kind);
        s.push_str(",\"worker\":");
        push_json_str(&mut s, &self.worker);
        s.push_str(&format!(
            ",\"campaign_fp\":{},\"shard\":{},\"trial\":{},\"t_us\":{},\"wall_us\":{}}}",
            self.campaign_fp, self.shard, self.trial, self.t_us, self.wall_us
        ));
        s
    }

    /// Rebuild from fields produced by [`crate::events::parse_line`].
    /// `None` unless the line is a well-formed `"record":"trace"` object.
    pub fn from_fields(fields: &[(String, JsonValue)]) -> Option<TraceEvent> {
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        if get("record")?.as_str()? != "trace" {
            return None;
        }
        Some(TraceEvent {
            kind: get("kind")?.as_str()?.to_string(),
            worker: get("worker")?.as_str()?.to_string(),
            campaign_fp: get("campaign_fp")?.as_u64()?,
            shard: get("shard")?.as_u64()?,
            trial: get("trial")?.as_u64()?,
            t_us: get("t_us")?.as_u64()?,
            wall_us: get("wall_us")?.as_u64()?,
        })
    }

    /// Parse one JSONL line as a trace record.
    pub fn parse(line: &str) -> Option<TraceEvent> {
        TraceEvent::from_fields(&crate::events::parse_line(line)?)
    }
}

/// Master switch. While off, every emit path is one relaxed load.
pub fn set_tracing(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
    if on {
        EPOCH.get_or_init(Instant::now);
    }
}

/// Whether trace emission is active.
pub fn tracing() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Additionally buffer emitted events in-process (a dispatch worker
/// turns this on so it can [`drain`] and forward them over the wire).
pub fn set_capture(on: bool) {
    CAPTURE_ON.store(on, Ordering::Relaxed);
}

/// Name this process in emitted records (dispatch worker name).
pub fn set_worker(name: &str) {
    *WORKER.lock().unwrap_or_else(|e| e.into_inner()) = name.to_string();
}

/// Set the shard coordinate for subsequent records (worker: per lease;
/// single-process runs: `--shard-index`).
pub fn set_shard(shard: u64) {
    SHARD.store(shard, Ordering::Relaxed);
}

/// Set the campaign fingerprint for subsequent records (engine: once
/// per prepared plan).
pub fn set_campaign_fp(fp: u64) {
    CAMPAIGN_FP.store(fp, Ordering::Relaxed);
}

/// Run `f` with the thread's trial coordinate set to `trial`.
pub fn with_ctx<T>(trial: u64, f: impl FnOnce() -> T) -> T {
    TRIAL.with(|t| {
        let prev = t.replace(trial);
        let out = f();
        t.set(prev);
        out
    })
}

/// The context that would be attached to a record emitted right now.
pub fn current() -> TraceCtx {
    TraceCtx {
        campaign_fp: CAMPAIGN_FP.load(Ordering::Relaxed),
        shard: SHARD.load(Ordering::Relaxed),
        trial: TRIAL.with(|t| t.get()),
    }
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Emit a record with the current context; no-op while tracing is off.
pub fn emit(kind: &str, wall_us: u64) {
    if !tracing() {
        return;
    }
    let ctx = current();
    emit_event(TraceEvent {
        kind: kind.to_string(),
        worker: WORKER.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        campaign_fp: ctx.campaign_fp,
        shard: ctx.shard,
        trial: ctx.trial,
        t_us: now_us().saturating_sub(wall_us),
        wall_us,
    });
}

/// Emit a record with explicit shard/trial coordinates (lifecycle
/// markers from the coordinator); no-op while tracing is off.
pub fn emit_for(kind: &str, shard: u64, trial: u64, wall_us: u64) {
    if !tracing() {
        return;
    }
    emit_event(TraceEvent {
        kind: kind.to_string(),
        worker: WORKER.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        campaign_fp: CAMPAIGN_FP.load(Ordering::Relaxed),
        shard,
        trial,
        t_us: now_us().saturating_sub(wall_us),
        wall_us,
    })
}

/// Route an already-built record: the local event sink (if one is
/// installed) and the capture buffer (if capture is on). A coordinator
/// calls this to re-log records forwarded from workers.
pub fn emit_event(ev: TraceEvent) {
    if crate::events::events_enabled() {
        crate::events::write_raw_line(&ev.to_json());
    }
    if CAPTURE_ON.load(Ordering::Relaxed) {
        let mut buf = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() < CAPTURE_CAP {
            buf.push(ev);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Take everything the capture buffer holds (worker lease drain).
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *CAPTURE.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Records lost to the capture cap since the last [`reset`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Reset all trace state (tests).
pub fn reset() {
    TRACE_ON.store(false, Ordering::Relaxed);
    CAPTURE_ON.store(false, Ordering::Relaxed);
    CAMPAIGN_FP.store(0, Ordering::Relaxed);
    SHARD.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    WORKER.lock().unwrap_or_else(|e| e.into_inner()).clear();
    CAPTURE.lock().unwrap_or_else(|e| e.into_inner()).clear();
    TRIAL.with(|t| t.set(u64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let ev = TraceEvent {
            kind: "faulty_run".to_string(),
            worker: "w\"1\"".to_string(),
            campaign_fp: 0xDEAD_BEEF_1234_5678,
            shard: 2,
            trial: 41,
            t_us: 1_000_001,
            wall_us: 917,
        };
        let back = TraceEvent::parse(&ev.to_json()).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn parse_rejects_other_records() {
        assert!(TraceEvent::parse("{\"record\":\"campaign\",\"kind\":\"x\"}").is_none());
        assert!(TraceEvent::parse("{\"kind\":\"x\"}").is_none());
        assert!(TraceEvent::parse("not json").is_none());
    }

    #[test]
    fn capture_and_context_flow() {
        let _guard = crate::testutil::lock();
        reset();
        set_tracing(true);
        set_capture(true);
        set_worker("w7");
        set_campaign_fp(99);
        set_shard(3);
        with_ctx(12, || emit("faulty_run", 500));
        emit("lease_start", 0);
        let drained = drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind, "faulty_run");
        assert_eq!(drained[0].worker, "w7");
        assert_eq!(drained[0].campaign_fp, 99);
        assert_eq!(drained[0].shard, 3);
        assert_eq!(drained[0].trial, 12);
        assert_eq!(drained[0].wall_us, 500);
        assert_eq!(drained[1].trial, u64::MAX);
        assert!(drain().is_empty());
        reset();
    }

    #[test]
    fn disabled_emits_nothing() {
        let _guard = crate::testutil::lock();
        reset();
        set_capture(true); // capture without tracing: emit still gated
        emit("faulty_run", 1);
        assert!(drain().is_empty());
        reset();
    }

    #[test]
    fn capture_cap_counts_drops() {
        let _guard = crate::testutil::lock();
        reset();
        set_tracing(true);
        set_capture(true);
        {
            let mut buf = CAPTURE.lock().unwrap();
            buf.extend(std::iter::repeat_n(
                TraceEvent {
                    kind: "x".into(),
                    worker: String::new(),
                    campaign_fp: 0,
                    shard: 0,
                    trial: 0,
                    t_us: 0,
                    wall_us: 0,
                },
                CAPTURE_CAP,
            ));
        }
        emit("overflow", 0);
        assert_eq!(dropped(), 1);
        reset();
    }
}
