//! Span timers with a per-phase profile.
//!
//! Each injection trial passes through a fixed set of phases; wall time
//! per phase is accumulated into global atomics, so aggregation across
//! rayon workers is free. Timing only happens while the registry switch
//! ([`crate::registry::enabled`]) is on — disabled runs execute the
//! closure directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::registry;

/// Campaign phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Fault-free reference run of the application.
    GoldenRun = 0,
    /// Seed derivation, launch-window sampling, fault planning.
    FaultSetup = 1,
    /// The faulty end-to-end application run.
    FaultyRun = 2,
    /// Outcome classification and bookkeeping (counters, events).
    Classify = 3,
    /// Single-pass instrumented ACE/lifetime run (analytic estimator).
    AceRun = 4,
    /// Instrumented golden pass capturing fast-forward snapshots.
    SnapshotCapture = 5,
    /// Instrumented golden pass recording the replay access trace.
    TraceCapture = 6,
}

impl Phase {
    pub const ALL: [Phase; 7] = [
        Phase::GoldenRun,
        Phase::FaultSetup,
        Phase::FaultyRun,
        Phase::Classify,
        Phase::AceRun,
        Phase::SnapshotCapture,
        Phase::TraceCapture,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Phase::GoldenRun => "golden_run",
            Phase::FaultSetup => "fault_setup",
            Phase::FaultyRun => "faulty_run",
            Phase::Classify => "classify",
            Phase::AceRun => "ace_run",
            Phase::SnapshotCapture => "snapshot_capture",
            Phase::TraceCapture => "trace_capture",
        }
    }
}

const N: usize = 7;

struct Profile {
    nanos: [AtomicU64; N],
    calls: [AtomicU64; N],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static PROFILE: Profile = Profile {
    nanos: [ZERO; N],
    calls: [ZERO; N],
};

/// Run `f`, attributing its wall time to `phase` when observability is
/// enabled; otherwise just runs `f`.
pub fn time_phase<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    if !registry::enabled() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    record(phase, t0.elapsed().as_nanos() as u64);
    out
}

/// Directly attribute `nanos` of wall time to `phase` (for call sites
/// that already measured).
pub fn record(phase: Phase, nanos: u64) {
    let i = phase as usize;
    PROFILE.nanos[i].fetch_add(nanos, Ordering::Relaxed);
    PROFILE.calls[i].fetch_add(1, Ordering::Relaxed);
    // Phase timings double as trace records while tracing is on (the
    // emit is a single relaxed load otherwise).
    crate::trace::emit(phase.label(), nanos / 1_000);
}

/// One phase's aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    pub phase: Phase,
    pub calls: u64,
    pub total_ns: u64,
}

impl PhaseSnapshot {
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    pub fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64 / 1e3
        }
    }
}

/// Aggregates for all phases, in execution order.
pub fn phase_snapshot() -> Vec<PhaseSnapshot> {
    Phase::ALL
        .iter()
        .map(|&p| PhaseSnapshot {
            phase: p,
            calls: PROFILE.calls[p as usize].load(Ordering::Relaxed),
            total_ns: PROFILE.nanos[p as usize].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zero all phase aggregates (tests).
pub fn reset() {
    for i in 0..N {
        PROFILE.nanos[i].store(0, Ordering::Relaxed);
        PROFILE.calls[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_only_when_enabled() {
        let _guard = crate::testutil::lock();
        registry::set_enabled(false);
        reset();
        let v = time_phase(Phase::FaultyRun, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(phase_snapshot()[Phase::FaultyRun as usize].calls, 0);

        registry::set_enabled(true);
        let v = time_phase(Phase::FaultyRun, || 2 * 21);
        assert_eq!(v, 42);
        record(Phase::Classify, 1500);
        record(Phase::Classify, 500);
        let snap = phase_snapshot();
        let faulty = snap[Phase::FaultyRun as usize];
        assert_eq!(faulty.calls, 1);
        let classify = snap[Phase::Classify as usize];
        assert_eq!(classify.calls, 2);
        assert_eq!(classify.total_ns, 2000);
        assert!((classify.mean_us() - 1.0).abs() < 1e-12);
        registry::set_enabled(false);
        reset();
    }

    #[test]
    fn labels_cover_all_phases() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "golden_run",
                "fault_setup",
                "faulty_run",
                "classify",
                "ace_run",
                "snapshot_capture",
                "trace_capture"
            ]
        );
    }
}
