//! Structured JSONL event sink: one line per injection.
//!
//! The serializer is hand-rolled (no serde in the sandbox) and the format
//! is one flat JSON object per line, so downstream analysis — SDC-pattern
//! studies in the style of Tung et al., two-level SDC estimation à la
//! Hari et al. — can regenerate per-injection telemetry with any JSON
//! reader. [`parse_line`] provides a minimal reader for tests and
//! in-repo tooling.
//!
//! The sink is process-global and off by default; while off, [`emit`] is
//! a single relaxed atomic load. Event emission never perturbs campaign
//! RNG streams, so results are identical with the sink on or off.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static EVENTS_ON: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// One fault-injection trial, as recorded in the event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionEvent<'a> {
    /// Per-trial derived seed (reproduces the trial exactly).
    pub seed: u64,
    pub app: &'a str,
    pub kernel: &'a str,
    /// Abstraction layer: `"uarch"` (AVF side) or `"sw"` (SVF side).
    pub layer: &'a str,
    /// Hardware structure label (uarch) or fault-kind label (sw).
    pub target: &'a str,
    /// Trial ordinal within its (kernel, target) sub-campaign.
    pub trial: u64,
    /// Flipped bit position.
    pub bit: u8,
    /// Injection cycle (uarch) or eligible-instruction index (sw).
    pub cycle: u64,
    /// Outcome class label: `masked` / `sdc` / `timeout` / `due`.
    pub outcome: &'a str,
    /// Wall-clock time of the whole trial, microseconds.
    pub wall_us: u64,
}

/// JSON string literal serializer shared by every JSONL writer in the
/// workspace (events here, campaign checkpoints in `crates/core`), so all
/// record shapes escape identically and [`parse_line`] reads them all.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl InjectionEvent<'_> {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        let num = |s: &mut String, k: &str, v: u64, first: bool| {
            if !first {
                s.push(',');
            }
            push_json_str(s, k);
            s.push(':');
            s.push_str(&v.to_string());
        };
        let st = |s: &mut String, k: &str, v: &str| {
            s.push(',');
            push_json_str(s, k);
            s.push(':');
            push_json_str(s, v);
        };
        num(&mut s, "seed", self.seed, true);
        st(&mut s, "app", self.app);
        st(&mut s, "kernel", self.kernel);
        st(&mut s, "layer", self.layer);
        st(&mut s, "target", self.target);
        num(&mut s, "trial", self.trial, false);
        num(&mut s, "bit", self.bit as u64, false);
        num(&mut s, "cycle", self.cycle, false);
        st(&mut s, "outcome", self.outcome);
        num(&mut s, "wall_us", self.wall_us, false);
        s.push('}');
        s
    }
}

/// Open (truncate) `path` and start recording events.
pub fn init_events(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let f = File::create(path)?;
    *SINK.lock().unwrap() = Some(BufWriter::new(f));
    EVENTS_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Whether a sink is installed and recording.
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

fn write_line(line: &str) {
    let mut guard = SINK.lock().unwrap();
    if let Some(w) = guard.as_mut() {
        // A full disk mid-campaign should not abort the science run;
        // drop the line (the final flush reports failure via Result).
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }
}

/// Write a pre-serialized record into the sink (sibling modules — trace
/// records share the event log). Callers check [`events_enabled`].
pub(crate) fn write_raw_line(line: &str) {
    write_line(line);
}

/// Record one event; no-op while no sink is installed.
pub fn emit(ev: &InjectionEvent) {
    if !events_enabled() {
        return;
    }
    write_line(&ev.to_json());
}

/// A campaign lifecycle event: shard start/finish, checkpoint resume,
/// merge. Distinguished from injection lines by `"record":"campaign"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignEvent<'a> {
    /// `"shard_start"` / `"shard_done"` / `"resume"` / `"merge"`.
    pub kind: &'a str,
    pub app: &'a str,
    /// `"uarch"` or `"sw"`.
    pub layer: &'a str,
    pub shard: u64,
    pub shards: u64,
    /// Trials already classified (loaded from a checkpoint on resume).
    pub done: u64,
    /// Trials owned by this shard.
    pub total: u64,
}

impl CampaignEvent<'_> {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"record\":\"campaign\",\"kind\":");
        push_json_str(&mut s, self.kind);
        s.push_str(",\"app\":");
        push_json_str(&mut s, self.app);
        s.push_str(",\"layer\":");
        push_json_str(&mut s, self.layer);
        s.push_str(&format!(
            ",\"shard\":{},\"shards\":{},\"done\":{},\"total\":{}}}",
            self.shard, self.shards, self.done, self.total
        ));
        s
    }
}

/// Record one campaign lifecycle event; no-op while no sink is installed.
pub fn emit_campaign(ev: &CampaignEvent) {
    if !events_enabled() {
        return;
    }
    write_line(&ev.to_json());
}

/// A dispatch-service lifecycle event: worker joins, lease grants and
/// expiries, shard completions, campaign completion. Distinguished from
/// the other record shapes by `"record":"dispatch"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchEvent<'a> {
    /// `"worker_join"` / `"lease"` / `"lease_expired"` /
    /// `"shard_complete"` / `"complete"`.
    pub kind: &'a str,
    /// Worker name (`""` for coordinator-only events like expiries).
    pub worker: &'a str,
    /// Shard the event refers to (`0` for whole-campaign events).
    pub shard: u64,
    pub shards: u64,
    /// Execution attempt for this shard (1 = first lease).
    pub attempt: u64,
    /// Trial records the coordinator holds for this shard so far.
    pub done: u64,
    /// Trials owned by the shard.
    pub total: u64,
}

impl DispatchEvent<'_> {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(144);
        s.push_str("{\"record\":\"dispatch\",\"kind\":");
        push_json_str(&mut s, self.kind);
        s.push_str(",\"worker\":");
        push_json_str(&mut s, self.worker);
        s.push_str(&format!(
            ",\"shard\":{},\"shards\":{},\"attempt\":{},\"done\":{},\"total\":{}}}",
            self.shard, self.shards, self.attempt, self.done, self.total
        ));
        s
    }
}

/// Record one dispatch lifecycle event; no-op while no sink is installed.
pub fn emit_dispatch(ev: &DispatchEvent) {
    if !events_enabled() {
        return;
    }
    write_line(&ev.to_json());
}

/// A snapshot-capture event: one instrumented golden pass materialized
/// the fast-forward snapshot set of a campaign. Distinguished from the
/// other record shapes by `"record":"snapshot"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEvent<'a> {
    pub app: &'a str,
    /// `"uarch"` or `"sw"`.
    pub layer: &'a str,
    /// Mid-launch snapshots requested per launch.
    pub per_launch: u64,
    /// Snapshots actually captured (mid-launch + launch boundaries).
    pub count: u64,
    /// Approximate heap footprint of the whole snapshot set, bytes.
    pub bytes: u64,
    /// Wall time of the capture pass, microseconds.
    pub wall_us: u64,
}

impl SnapshotEvent<'_> {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(144);
        s.push_str("{\"record\":\"snapshot\",\"app\":");
        push_json_str(&mut s, self.app);
        s.push_str(",\"layer\":");
        push_json_str(&mut s, self.layer);
        s.push_str(&format!(
            ",\"per_launch\":{},\"count\":{},\"bytes\":{},\"wall_us\":{}}}",
            self.per_launch, self.count, self.bytes, self.wall_us
        ));
        s
    }
}

/// Record one snapshot-capture event; no-op while no sink is installed.
pub fn emit_snapshot(ev: &SnapshotEvent) {
    if !events_enabled() {
        return;
    }
    write_line(&ev.to_json());
}

/// An adaptive-sizing wave event: one CI-driven wave of an adaptive
/// campaign finished and the planner re-evaluated its strata.
/// Distinguished from the other record shapes by `"record":"wave"`.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveEvent<'a> {
    pub app: &'a str,
    /// `"uarch"` or `"sw"`.
    pub layer: &'a str,
    /// Wave index (0-based).
    pub wave: u64,
    /// Trials executed by this wave.
    pub trials: u64,
    /// Strata still below the CI target after this wave.
    pub pending: u64,
    /// Strata total.
    pub strata: u64,
    /// Worst per-stratum CI half-width after this wave (micro-units:
    /// half-width × 1e6, matching the `adaptive_ci_halfwidth_micros`
    /// gauge).
    pub max_halfwidth_micros: u64,
}

impl WaveEvent<'_> {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(144);
        s.push_str("{\"record\":\"wave\",\"app\":");
        push_json_str(&mut s, self.app);
        s.push_str(",\"layer\":");
        push_json_str(&mut s, self.layer);
        s.push_str(&format!(
            ",\"wave\":{},\"trials\":{},\"pending\":{},\"strata\":{},\
             \"max_halfwidth_micros\":{}}}",
            self.wave, self.trials, self.pending, self.strata, self.max_halfwidth_micros
        ));
        s
    }
}

/// Record one adaptive wave event; no-op while no sink is installed.
pub fn emit_wave(ev: &WaveEvent) {
    if !events_enabled() {
        return;
    }
    write_line(&ev.to_json());
}

/// Flush buffered events to disk.
pub fn flush_events() -> std::io::Result<()> {
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        w.flush()?;
    }
    Ok(())
}

/// Flush, close, and disable the sink.
pub fn shutdown_events() {
    EVENTS_ON.store(false, Ordering::Relaxed);
    if let Some(mut w) = SINK.lock().unwrap().take() {
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader (flat objects of strings/numbers), for round-trip
// tests and in-repo analysis of event logs.
// ---------------------------------------------------------------------

/// A parsed JSON scalar. Numbers keep their raw text so 64-bit integers
/// (seeds!) survive without `f64` precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

impl JsonValue {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSONL line: a flat object of string / number / bool / null
/// values. Returns the fields in source order. `None` on malformed input
/// or nested structures.
pub fn parse_line(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            't' | 'f' | 'n' => {
                let mut word = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap());
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    _ => return None,
                }
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Validate syntax eagerly; keep the raw text.
                num.parse::<f64>().ok()?;
                JsonValue::Num(num)
            }
        };
        out.push((key, val));
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(out)
}

/// A parsed JSON document node. Unlike [`parse_line`]'s flat rows, this
/// shape nests — the telemetry `/status` documents carry arrays of
/// per-shard / per-worker objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonNode {
    Scalar(JsonValue),
    Arr(Vec<JsonNode>),
    Obj(Vec<(String, JsonNode)>),
}

impl JsonNode {
    /// Object member lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonNode> {
        match self {
            JsonNode::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonNode]> {
        match self {
            JsonNode::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonNode::Scalar(v) => v.as_str(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonNode::Scalar(v) => v.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonNode::Scalar(v) => v.as_f64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonNode::Scalar(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a full (possibly nested) JSON document. `None` on malformed
/// input or trailing garbage. [`parse_line`] stays deliberately flat —
/// its no-proper-prefix-parses property is load-bearing for torn-frame
/// detection in checkpoints and the dispatch protocol — so nested
/// consumers (the `/status` documents) use this instead.
pub fn parse_json(text: &str) -> Option<JsonNode> {
    let mut chars = text.trim().chars().peekable();
    let node = parse_node(&mut chars)?;
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(node)
}

fn parse_node(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<JsonNode> {
    skip_ws(chars);
    match chars.peek()? {
        '{' => {
            chars.next();
            let mut fields = Vec::new();
            loop {
                skip_ws(chars);
                match chars.peek()? {
                    '}' => {
                        chars.next();
                        return Some(JsonNode::Obj(fields));
                    }
                    ',' => {
                        chars.next();
                        continue;
                    }
                    _ => {}
                }
                let key = parse_string(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                fields.push((key, parse_node(chars)?));
            }
        }
        '[' => {
            chars.next();
            let mut items = Vec::new();
            loop {
                skip_ws(chars);
                match chars.peek()? {
                    ']' => {
                        chars.next();
                        return Some(JsonNode::Arr(items));
                    }
                    ',' => {
                        chars.next();
                        continue;
                    }
                    _ => {}
                }
                items.push(parse_node(chars)?);
            }
        }
        '"' => Some(JsonNode::Scalar(JsonValue::Str(parse_string(chars)?))),
        't' | 'f' | 'n' => {
            let mut word = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                word.push(chars.next().unwrap());
            }
            match word.as_str() {
                "true" => Some(JsonNode::Scalar(JsonValue::Bool(true))),
                "false" => Some(JsonNode::Scalar(JsonValue::Bool(false))),
                "null" => Some(JsonNode::Scalar(JsonValue::Null)),
                _ => None,
            }
        }
        _ => {
            let mut num = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || "+-.eE".contains(c) {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            num.parse::<f64>().ok()?;
            Some(JsonNode::Scalar(JsonValue::Num(num)))
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                '/' => s.push('/'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    s.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> InjectionEvent<'static> {
        InjectionEvent {
            seed: 0xDEAD_BEEF_1234_5678,
            app: "HotSpot",
            kernel: "K1",
            layer: "uarch",
            target: "L1D",
            trial: 42,
            bit: 17,
            cycle: 123_456,
            outcome: "sdc",
            wall_us: 950,
        }
    }

    #[test]
    fn json_round_trip() {
        let line = event().to_json();
        let fields = parse_line(&line).expect("parses");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("seed").unwrap().as_u64(), Some(0xDEAD_BEEF_1234_5678));
        assert_eq!(get("app").unwrap().as_str(), Some("HotSpot"));
        assert_eq!(get("kernel").unwrap().as_str(), Some("K1"));
        assert_eq!(get("layer").unwrap().as_str(), Some("uarch"));
        assert_eq!(get("target").unwrap().as_str(), Some("L1D"));
        assert_eq!(get("trial").unwrap().as_u64(), Some(42));
        assert_eq!(get("bit").unwrap().as_u64(), Some(17));
        assert_eq!(get("cycle").unwrap().as_u64(), Some(123_456));
        assert_eq!(get("outcome").unwrap().as_str(), Some("sdc"));
        assert_eq!(get("wall_us").unwrap().as_u64(), Some(950));
        assert_eq!(fields.len(), 10);
    }

    #[test]
    fn campaign_event_round_trips() {
        let ev = CampaignEvent {
            kind: "resume",
            app: "VA",
            layer: "uarch",
            shard: 1,
            shards: 3,
            done: 40,
            total: 100,
        };
        let fields = parse_line(&ev.to_json()).expect("parses");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("record").unwrap().as_str(), Some("campaign"));
        assert_eq!(get("kind").unwrap().as_str(), Some("resume"));
        assert_eq!(get("shard").unwrap().as_u64(), Some(1));
        assert_eq!(get("shards").unwrap().as_u64(), Some(3));
        assert_eq!(get("done").unwrap().as_u64(), Some(40));
        assert_eq!(get("total").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn dispatch_event_round_trips() {
        let ev = DispatchEvent {
            kind: "lease",
            worker: "w\"1\"",
            shard: 2,
            shards: 6,
            attempt: 3,
            done: 17,
            total: 50,
        };
        let fields = parse_line(&ev.to_json()).expect("parses");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("record").unwrap().as_str(), Some("dispatch"));
        assert_eq!(get("kind").unwrap().as_str(), Some("lease"));
        assert_eq!(get("worker").unwrap().as_str(), Some("w\"1\""));
        assert_eq!(get("shard").unwrap().as_u64(), Some(2));
        assert_eq!(get("shards").unwrap().as_u64(), Some(6));
        assert_eq!(get("attempt").unwrap().as_u64(), Some(3));
        assert_eq!(get("done").unwrap().as_u64(), Some(17));
        assert_eq!(get("total").unwrap().as_u64(), Some(50));
    }

    #[test]
    fn snapshot_event_round_trips() {
        let ev = SnapshotEvent {
            app: "SCP",
            layer: "uarch",
            per_launch: 8,
            count: 9,
            bytes: 4_200_000,
            wall_us: 12_345,
        };
        let fields = parse_line(&ev.to_json()).expect("parses");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("record").unwrap().as_str(), Some("snapshot"));
        assert_eq!(get("app").unwrap().as_str(), Some("SCP"));
        assert_eq!(get("layer").unwrap().as_str(), Some("uarch"));
        assert_eq!(get("per_launch").unwrap().as_u64(), Some(8));
        assert_eq!(get("count").unwrap().as_u64(), Some(9));
        assert_eq!(get("bytes").unwrap().as_u64(), Some(4_200_000));
        assert_eq!(get("wall_us").unwrap().as_u64(), Some(12_345));
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        let parsed = parse_string(&mut s.chars().peekable()).unwrap();
        assert_eq!(parsed, "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_line("").is_none());
        assert!(parse_line("{\"a\":}").is_none());
        assert!(parse_line("{\"a\":1} trailing").is_none());
        assert!(parse_line("[1,2]").is_none());
        assert!(parse_line("{\"a\":1,\"b\":\"x\", \"c\":true,\"d\":null}").is_some());
    }

    #[test]
    fn nested_parser_reads_status_shapes() {
        let doc = parse_json(
            "{\"shards\":[{\"shard\":0,\"state\":\"done\"},{\"shard\":1,\"state\":\"leased\",\
             \"owner\":\"w1\"}],\"records_per_s\":123.5,\"fp\":\"00ff\",\"done\":false}",
        )
        .expect("parses");
        let shards = doc.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(shards[1].get("owner").unwrap().as_str(), Some("w1"));
        assert_eq!(doc.get("records_per_s").unwrap().as_f64(), Some(123.5));
        assert_eq!(doc.get("fp").unwrap().as_str(), Some("00ff"));
        assert_eq!(
            doc.get("done").unwrap(),
            &JsonNode::Scalar(JsonValue::Bool(false))
        );
        // Empty containers and nesting both work.
        assert_eq!(parse_json("[]"), Some(JsonNode::Arr(vec![])));
        assert_eq!(parse_json("{}"), Some(JsonNode::Obj(vec![])));
        assert!(parse_json("{\"a\":[{\"b\":[1,2]}]}").is_some());
        // Malformed / trailing input rejected.
        assert!(parse_json("{\"a\":1} x").is_none());
        assert!(parse_json("{\"a\":[1,}").is_none());
        assert!(parse_json("").is_none());
    }

    #[test]
    fn sink_lifecycle_writes_lines() {
        let _guard = crate::testutil::lock();
        let dir = std::env::temp_dir().join("obs_events_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");

        // Disabled: emit is a no-op, file never created.
        shutdown_events();
        emit(&event());
        assert!(!path.exists());

        init_events(&path).unwrap();
        assert!(events_enabled());
        emit(&event());
        emit(&event());
        shutdown_events();
        assert!(!events_enabled());

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert!(parse_line(l).is_some(), "unparseable: {l}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
