//! Tiny `std::net` HTTP server for telemetry endpoints (plus a matching
//! one-shot client).
//!
//! Serves exactly what a fleet operator needs from a campaign process:
//!
//! * `GET /metrics` — the global registry in Prometheus text format
//!   ([`crate::expo::render`]), optionally followed by extra exposition
//!   text (a coordinator appends re-labeled worker scrapes here);
//! * `GET /status`  — a caller-provided JSON document (the live fleet or
//!   worker view);
//! * `GET /`        — a two-line text index.
//!
//! Thread-per-accept with a non-blocking accept loop, `Connection:
//! close` on every response — deliberately the simplest thing that a
//! Prometheus scraper, `curl`, and the `campaign status`/`top`
//! subcommands can all talk to. Serving never touches campaign RNG
//! streams, so results remain bit-identical with telemetry on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop checks the shutdown flag.
const ACCEPT_TICK: Duration = Duration::from_millis(50);
/// Per-connection I/O budget: telemetry requests are one-line GETs.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Longest request head we bother reading (anything bigger is a 431).
const MAX_HEAD: usize = 16 * 1024;

/// Pluggable content for the two dynamic endpoints.
pub struct Handlers {
    /// Body for `GET /status` (should be a JSON document).
    pub status: Box<dyn Fn() -> String + Send + Sync>,
    /// Extra exposition text appended after the registry render on
    /// `GET /metrics` (may be empty; must itself be lint-clean).
    pub metrics_extra: Box<dyn Fn() -> String + Send + Sync>,
}

impl Handlers {
    /// Handlers serving a fixed status document and no extra metrics.
    pub fn status_only(status: impl Fn() -> String + Send + Sync + 'static) -> Handlers {
        Handlers {
            status: Box::new(status),
            metrics_extra: Box::new(String::new),
        }
    }
}

/// A running telemetry server. Dropping the handle (or calling
/// [`TelemetryServer::shutdown`]) stops the accept loop and joins it.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Serve telemetry on `listener` (bind `port 0` for an ephemeral
    /// port and read it back from [`TelemetryServer::addr`]).
    pub fn start(listener: TcpListener, handlers: Handlers) -> std::io::Result<TelemetryServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handlers = Arc::new(handlers);
        let accept_thread =
            std::thread::Builder::new()
                .name("obs-http".into())
                .spawn(move || {
                    // Connection handlers are detached: each one serves a
                    // single request with a hard I/O timeout, so the longest
                    // a handler can outlive the accept loop is IO_TIMEOUT.
                    while !stop2.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let handlers = Arc::clone(&handlers);
                                let _ = std::thread::Builder::new()
                                    .name("obs-http-conn".into())
                                    .spawn(move || {
                                        let _ = handle_conn(stream, &handlers);
                                    });
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_TICK);
                            }
                            Err(_) => break,
                        }
                    }
                })?;
        Ok(TelemetryServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve telemetry on it.
    pub fn bind(addr: &str, handlers: Handlers) -> std::io::Result<TelemetryServer> {
        TelemetryServer::start(TcpListener::bind(addr)?, handlers)
    }

    /// The bound address (resolves `:0` to the ephemeral port chosen).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

fn handle_conn(mut stream: TcpStream, handlers: &Handlers) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    // Read until the end of the request head; GETs have no body.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return respond(
                &mut stream,
                431,
                "Request Header Fields Too Large",
                "text/plain",
                "",
            );
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer hung up before finishing
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path); // ignore queries
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/metrics" => {
            let mut body = crate::expo::render(&crate::registry::global().snapshot());
            body.push_str(&(handlers.metrics_extra)());
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/status" => respond(
            &mut stream,
            200,
            "OK",
            "application/json; charset=utf-8",
            &(handlers.status)(),
        ),
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain; charset=utf-8",
            "endpoints: /metrics (Prometheus text format), /status (JSON)\n",
        ),
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

// ---------------------------------------------------------------------
// One-shot client
// ---------------------------------------------------------------------

/// `GET http://{addr}{path}` and return `(status code, body)`.
///
/// A deliberately minimal HTTP/1.1 client for in-fleet use: the
/// coordinator scraping worker `/metrics`, and the `campaign
/// status`/`top`/`scrape` subcommands polling a coordinator. Reads until
/// EOF (every server response here is `Connection: close`).
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true).ok();
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        ));
    };
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed HTTP status line",
            )
        })?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_status_index_and_404() {
        let _guard = crate::testutil::lock();
        crate::registry::global().clear();
        crate::registry::set_enabled(true);
        crate::registry::counter_add("http_test_hits", &[("app", "VA")], 2);
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            Handlers::status_only(|| "{\"ok\":true}".to_string()),
        )
        .expect("bind");
        let addr = server.addr().to_string();

        let (code, body) = http_get(&addr, "/metrics", IO_TIMEOUT).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("http_test_hits{app=\"VA\"} 2\n"), "{body}");
        crate::expo::lint(&body).expect("exposition lints");

        let (code, body) = http_get(&addr, "/status", IO_TIMEOUT).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "{\"ok\":true}");

        let (code, body) = http_get(&addr, "/", IO_TIMEOUT).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("/metrics"));

        let (code, _) = http_get(&addr, "/nope", IO_TIMEOUT).unwrap();
        assert_eq!(code, 404);

        crate::registry::set_enabled(false);
        crate::registry::global().clear();
    }

    #[test]
    fn metrics_extra_is_appended() {
        let _guard = crate::testutil::lock();
        crate::registry::global().clear();
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            Handlers {
                status: Box::new(|| "{}".to_string()),
                metrics_extra: Box::new(|| "extra_metric 7\n".to_string()),
            },
        )
        .expect("bind");
        let (code, body) = http_get(&server.addr().to_string(), "/metrics", IO_TIMEOUT).unwrap();
        assert_eq!(code, 200);
        assert!(body.ends_with("extra_metric 7\n"));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server =
            TelemetryServer::bind("127.0.0.1:0", Handlers::status_only(|| String::new()))
                .expect("bind");
        let addr = server.addr().to_string();
        server.shutdown();
        // The listener is gone: connects are refused (or time out).
        assert!(http_get(&addr, "/status", Duration::from_millis(500)).is_err());
    }
}
