//! Cross-thread correctness: metric updates from a rayon-style fan-out
//! must be lossless, exactly like the campaign worker pool uses them.

use std::sync::atomic::Ordering;

use rayon::prelude::*;

#[test]
fn concurrent_counter_and_histogram_updates_are_lossless() {
    let r = obs::Registry::new();
    let c = r.counter("trials", &[("app", "VA")]);
    let h = r.histogram("lat", &[], &[8, 64, 512]);
    const N: usize = 20_000;
    (0..N)
        .into_par_iter()
        .map(|i| {
            c.fetch_add(1, Ordering::Relaxed);
            h.observe((i % 1024) as u64);
            // Handle-free path too: per-call lookup under the map mutex.
            r.counter_add("lookups", &[], 1);
            1u64
        })
        .reduce(|| 0, |a, b| a + b);
    let s = r.snapshot();
    assert_eq!(s.counter("trials{app=VA}"), Some(N as u64));
    assert_eq!(s.counter("lookups"), Some(N as u64));
    let (_, hs) = &s.histograms[0];
    assert_eq!(hs.count, N as u64);
    assert_eq!(hs.buckets.iter().sum::<u64>(), N as u64);
}

#[test]
fn concurrent_phase_recording_accumulates() {
    // The span profile is global; reset it and serialize against other
    // integration tests via distinct process (cargo runs each test binary
    // separately), so only this file's tests share it.
    obs::span::reset();
    (0..1000usize)
        .into_par_iter()
        .map(|_| {
            obs::span::record(obs::Phase::FaultyRun, 10);
            0u64
        })
        .reduce(|| 0, |a, b| a + b);
    let snap = obs::phase_snapshot();
    let faulty = snap[obs::Phase::FaultyRun as usize];
    assert_eq!(faulty.calls, 1000);
    assert_eq!(faulty.total_ns, 10_000);
    obs::span::reset();
}
