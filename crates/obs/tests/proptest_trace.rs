//! Property tests for the trace record wire dialect.
//!
//! Trace records ride the same JSONL streams as every other event — the
//! worker's `--events` sink and the dispatch protocol — so they inherit
//! the stream's two load-bearing guarantees, checked here over arbitrary
//! inputs: (1) `to_json` → `parse` is the identity, including hostile
//! worker names and kinds (quotes, backslashes, control characters), and
//! (2) no proper prefix of a serialized record parses, so a torn line
//! can never be mistaken for a complete trace event.

use obs::TraceEvent;
use proptest::prelude::*;

fn event_of(
    kind_bytes: Vec<u8>,
    worker_bytes: Vec<u8>,
    fp: u64,
    shard: u64,
    trial: u64,
    t_us: u64,
    wall_us: u64,
) -> TraceEvent {
    // Arbitrary printable ASCII, quotes and backslashes included — the
    // serializer must escape whatever a CLI passed as a worker name.
    TraceEvent {
        kind: String::from_utf8(kind_bytes).unwrap(),
        worker: String::from_utf8(worker_bytes).unwrap(),
        campaign_fp: fp,
        shard,
        trial,
        t_us,
        wall_us,
    }
}

proptest! {
    #[test]
    fn trace_event_round_trips(
        kind_bytes in prop::collection::vec(0x20u8..0x7f, 0..24),
        worker_bytes in prop::collection::vec(0x20u8..0x7f, 0..16),
        fp in any::<u64>(),
        shard in any::<u64>(),
        trial in any::<u64>(),
        t_us in any::<u64>(),
        wall_us in any::<u64>(),
    ) {
        let ev = event_of(kind_bytes, worker_bytes, fp, shard, trial, t_us, wall_us);
        let line = ev.to_json();
        prop_assert_eq!(TraceEvent::parse(&line), Some(ev));
    }

    #[test]
    fn no_trace_event_prefix_parses(
        kind_bytes in prop::collection::vec(0x20u8..0x7f, 0..24),
        worker_bytes in prop::collection::vec(0x20u8..0x7f, 0..16),
        fp in any::<u64>(),
        trial in any::<u64>(),
    ) {
        let ev = event_of(kind_bytes, worker_bytes, fp, 3, trial, 1_000, 250);
        let line = ev.to_json();
        for cut in 0..line.len() {
            prop_assert!(
                obs::events::parse_line(&line[..cut]).is_none(),
                "prefix {:?} parsed", &line[..cut]
            );
        }
    }
}
