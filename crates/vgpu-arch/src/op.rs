//! The instruction set: operations, operands, comparison and boolean modes.

use crate::reg::{Pred, Reg, SpecialReg};
use std::fmt;

/// The second/third source of most ALU operations: a register, a 32-bit
/// immediate, or a word of the constant bank (kernel parameter space,
/// `c[0x0][idx]` in SASS notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    Reg(Reg),
    Imm(u32),
    Const(u16),
}

impl Operand {
    /// Immediate operand from an `i32` (stored as its two's-complement bits).
    pub fn imm_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }

    /// Immediate operand from an `f32` (stored as its IEEE-754 bits).
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// The register read by this operand, if any.
    pub fn src_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as u32)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{:#x}", v),
            Operand::Const(i) => write!(f, "c[0x0][{:#x}]", *i as u32 * 4),
        }
    }
}

/// Comparison mode for `ISETP`/`FSETP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Evaluate on a totally ordered comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        };
        f.write_str(s)
    }
}

/// Boolean combiner for `PSETP` (predicate-to-predicate logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    And,
    Or,
    Xor,
}

impl BoolOp {
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::And => a && b,
            BoolOp::Or => a || b,
            BoolOp::Xor => a ^ b,
        }
    }
}

/// Memory space addressed by `LD`/`ST`.
///
/// * `Global` — device memory, cached in L1D and L2.
/// * `Shared` — per-CTA scratchpad (SMEM).
/// * `Tex` — read-only global data routed through the L1 texture cache
///   (and L2). Stores to `Tex` are architecturally invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    Global,
    Shared,
    Tex,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "GLOBAL",
            MemSpace::Shared => "SHARED",
            MemSpace::Tex => "TEX",
        };
        f.write_str(s)
    }
}

/// One GPU operation. All data operations act on 32-bit values; floating
/// point follows IEEE-754 binary32 with Rust `f32` semantics (deterministic
/// on a given host, which is all statistical fault injection requires).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `d = special register`.
    S2R { d: Reg, sr: SpecialReg },
    /// `d = a` (register move, immediate load, or constant-bank read).
    Mov { d: Reg, a: Operand },
    /// `d = a + b` (wrapping).
    IAdd { d: Reg, a: Reg, b: Operand },
    /// `d = a - b` (wrapping).
    ISub { d: Reg, a: Reg, b: Operand },
    /// `d = a * b` (wrapping, low 32 bits).
    IMul { d: Reg, a: Reg, b: Operand },
    /// `d = a * b + c` (wrapping).
    IMad {
        d: Reg,
        a: Reg,
        b: Operand,
        c: Operand,
    },
    /// `d = (a << shift) + b` — SASS `ISCADD`, the scaled-index address form.
    IScAdd {
        d: Reg,
        a: Reg,
        b: Operand,
        shift: u8,
    },
    /// `d = min(a,b)` or `max(a,b)`, signed or unsigned.
    IMnMx {
        d: Reg,
        a: Reg,
        b: Operand,
        max: bool,
        signed: bool,
    },
    /// Logical shift left.
    Shl { d: Reg, a: Reg, b: Operand },
    /// Logical shift right.
    Shr { d: Reg, a: Reg, b: Operand },
    /// Bitwise and.
    And { d: Reg, a: Reg, b: Operand },
    /// Bitwise or.
    Or { d: Reg, a: Reg, b: Operand },
    /// Bitwise xor.
    Xor { d: Reg, a: Reg, b: Operand },
    /// Bitwise not.
    Not { d: Reg, a: Reg },
    /// `d = a + b` (f32).
    FAdd { d: Reg, a: Reg, b: Operand },
    /// `d = a * b` (f32).
    FMul { d: Reg, a: Reg, b: Operand },
    /// `d = a * b + c` (f32 fused multiply-add).
    FFma {
        d: Reg,
        a: Reg,
        b: Operand,
        c: Operand,
    },
    /// `d = min/max(a,b)` (f32).
    FMnMx {
        d: Reg,
        a: Reg,
        b: Operand,
        max: bool,
    },
    /// `d = 1.0 / a` (f32) — SFU op.
    FRcp { d: Reg, a: Reg },
    /// `d = sqrt(a)` (f32) — SFU op.
    FSqrt { d: Reg, a: Reg },
    /// `d = exp(a)` (f32) — SFU op.
    FExp { d: Reg, a: Reg },
    /// `d = ln(a)` (f32) — SFU op.
    FLog { d: Reg, a: Reg },
    /// `d = |a|` (f32).
    FAbs { d: Reg, a: Reg },
    /// `d = (f32) a` (signed int to float).
    I2F { d: Reg, a: Reg },
    /// `d = (i32) a` (float to signed int, truncating; saturates at the
    /// i32 range, NaN converts to 0 — Rust `as` semantics, matching PTX
    /// `cvt.rzi.s32.f32` saturation behaviour closely enough).
    F2I { d: Reg, a: Reg },
    /// `p = a <cmp> b` on integers.
    ISetP {
        p: Pred,
        a: Reg,
        b: Operand,
        cmp: CmpOp,
        signed: bool,
    },
    /// `p = a <cmp> b` on f32 (ordered; comparisons with NaN are false,
    /// except `Ne` which is true).
    FSetP {
        p: Pred,
        a: Reg,
        b: Operand,
        cmp: CmpOp,
    },
    /// `p = (a ^ na) <bool> (b ^ nb)`.
    PSetP {
        p: Pred,
        a: Pred,
        b: Pred,
        op: BoolOp,
        na: bool,
        nb: bool,
    },
    /// `d = (p ^ neg) ? a : b`.
    Sel {
        d: Reg,
        a: Reg,
        b: Operand,
        p: Pred,
        neg: bool,
    },
    /// `d = [a + off]` (32-bit load from `space`).
    Ld {
        d: Reg,
        space: MemSpace,
        a: Reg,
        off: i32,
    },
    /// `[a + off] = v` (32-bit store to `space`).
    St {
        space: MemSpace,
        a: Reg,
        off: i32,
        v: Reg,
    },
    /// CTA-wide barrier (`BAR.SYNC 0`).
    Bar,
    /// Branch to `target`; `reconv` is the immediate-post-dominator
    /// reconvergence PC used by the SIMT stack on divergence.
    Bra { target: u32, reconv: u32 },
    /// Terminate the thread (lane-maskable).
    Exit,
}

impl Op {
    /// Destination general-purpose register written by this op, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        use Op::*;
        match *self {
            S2R { d, .. }
            | Mov { d, .. }
            | IAdd { d, .. }
            | ISub { d, .. }
            | IMul { d, .. }
            | IMad { d, .. }
            | IScAdd { d, .. }
            | IMnMx { d, .. }
            | Shl { d, .. }
            | Shr { d, .. }
            | And { d, .. }
            | Or { d, .. }
            | Xor { d, .. }
            | Not { d, .. }
            | FAdd { d, .. }
            | FMul { d, .. }
            | FFma { d, .. }
            | FMnMx { d, .. }
            | FRcp { d, .. }
            | FSqrt { d, .. }
            | FExp { d, .. }
            | FLog { d, .. }
            | FAbs { d, .. }
            | I2F { d, .. }
            | F2I { d, .. }
            | Sel { d, .. }
            | Ld { d, .. } => Some(d),
            _ => None,
        }
    }

    /// General-purpose registers read by this op.
    pub fn src_regs(&self) -> Vec<Reg> {
        use Op::*;
        let mut v = Vec::with_capacity(3);
        let push_op = |o: &Operand, v: &mut Vec<Reg>| {
            if let Some(r) = o.src_reg() {
                v.push(r);
            }
        };
        match self {
            S2R { .. } | Bar | Bra { .. } | Exit | PSetP { .. } => {}
            Mov { a, .. } => push_op(a, &mut v),
            IAdd { a, b, .. }
            | ISub { a, b, .. }
            | IMul { a, b, .. }
            | IMnMx { a, b, .. }
            | Shl { a, b, .. }
            | Shr { a, b, .. }
            | And { a, b, .. }
            | Or { a, b, .. }
            | Xor { a, b, .. }
            | FAdd { a, b, .. }
            | FMul { a, b, .. }
            | FMnMx { a, b, .. }
            | ISetP { a, b, .. }
            | FSetP { a, b, .. }
            | Sel { a, b, .. } => {
                v.push(*a);
                push_op(b, &mut v);
            }
            IScAdd { a, b, .. } => {
                v.push(*a);
                push_op(b, &mut v);
            }
            IMad { a, b, c, .. } | FFma { a, b, c, .. } => {
                v.push(*a);
                push_op(b, &mut v);
                push_op(c, &mut v);
            }
            Not { a, .. }
            | FRcp { a, .. }
            | FSqrt { a, .. }
            | FExp { a, .. }
            | FLog { a, .. }
            | FAbs { a, .. }
            | I2F { a, .. }
            | F2I { a, .. } => v.push(*a),
            Ld { a, .. } => v.push(*a),
            St { a, v: val, .. } => {
                v.push(*a);
                v.push(*val);
            }
        }
        v
    }

    /// True if this is a memory access instruction.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. })
    }

    /// True if this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Ld { .. })
    }

    /// True for control instructions (no destination value).
    pub fn is_control(&self) -> bool {
        matches!(self, Op::Bra { .. } | Op::Exit | Op::Bar)
    }

    /// True if this op is a "general purpose" instruction in the NVBitFI
    /// sense: it produces a 32-bit value in a destination register and is
    /// therefore eligible for software-level destination-register fault
    /// injection.
    pub fn has_gp_dest(&self) -> bool {
        self.dst_reg().is_some()
    }

    /// Instruction class of this op for two-level statistical modelling
    /// (docs/TWOLEVEL.md). Ops without a general-purpose destination fall
    /// into [`InstrClass::Other`] and carry no injectable population.
    pub fn instr_class(&self) -> InstrClass {
        use Op::*;
        match self {
            S2R { .. } | Mov { .. } | Sel { .. } => InstrClass::Mov,
            IAdd { .. }
            | ISub { .. }
            | IMul { .. }
            | IMad { .. }
            | IScAdd { .. }
            | IMnMx { .. }
            | Shl { .. }
            | Shr { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Not { .. } => InstrClass::IntAlu,
            FAdd { .. } | FMul { .. } | FFma { .. } | FMnMx { .. } | FAbs { .. } => {
                InstrClass::FpAlu
            }
            FRcp { .. } | FSqrt { .. } | FExp { .. } | FLog { .. } => InstrClass::Sfu,
            I2F { .. } | F2I { .. } => InstrClass::Cvt,
            Ld { .. } => InstrClass::Ld,
            ISetP { .. } | FSetP { .. } | PSetP { .. } | St { .. } | Bar | Bra { .. } | Exit => {
                InstrClass::Other
            }
        }
    }
}

/// Coarse instruction classes for the two-level SDC model (Hari et al.):
/// every op with a general-purpose destination register falls into exactly
/// one of the first [`InstrClass::COUNT`] classes; predicate writers,
/// stores, and control flow land in [`InstrClass::Other`], which has no
/// injectable destination population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Data movement into a register: `S2R`, `MOV`, `SEL`.
    Mov,
    /// Integer ALU: add/sub/mul/mad/shift/logic/min-max.
    IntAlu,
    /// Single-precision FP ALU: add/mul/fma/min-max/abs.
    FpAlu,
    /// Special-function unit: rcp/sqrt/exp/log.
    Sfu,
    /// Int<->float conversions.
    Cvt,
    /// Loads (any memory space).
    Ld,
    /// No general-purpose destination — not an injection stratum.
    Other,
}

impl InstrClass {
    /// Number of classes with an injectable destination population
    /// (everything except [`InstrClass::Other`]).
    pub const COUNT: usize = 6;

    /// The injectable classes, in stable stratum order.
    pub const ALL: [InstrClass; InstrClass::COUNT] = [
        InstrClass::Mov,
        InstrClass::IntAlu,
        InstrClass::FpAlu,
        InstrClass::Sfu,
        InstrClass::Cvt,
        InstrClass::Ld,
    ];

    /// Stable index into per-class count arrays. `Other` has no slot.
    pub fn index(self) -> Option<usize> {
        match self {
            InstrClass::Mov => Some(0),
            InstrClass::IntAlu => Some(1),
            InstrClass::FpAlu => Some(2),
            InstrClass::Sfu => Some(3),
            InstrClass::Cvt => Some(4),
            InstrClass::Ld => Some(5),
            InstrClass::Other => None,
        }
    }

    /// Stable label used in CSVs, CLI flags, and dispatch frames.
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::Mov => "mov",
            InstrClass::IntAlu => "ialu",
            InstrClass::FpAlu => "falu",
            InstrClass::Sfu => "sfu",
            InstrClass::Cvt => "cvt",
            InstrClass::Ld => "ld",
            InstrClass::Other => "other",
        }
    }

    /// Inverse of [`InstrClass::label`].
    pub fn from_label(s: &str) -> Option<InstrClass> {
        match s {
            "mov" => Some(InstrClass::Mov),
            "ialu" => Some(InstrClass::IntAlu),
            "falu" => Some(InstrClass::FpAlu),
            "sfu" => Some(InstrClass::Sfu),
            "cvt" => Some(InstrClass::Cvt),
            "ld" => Some(InstrClass::Ld),
            "other" => Some(InstrClass::Other),
            _ => None,
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(!CmpOp::Ne.eval(Equal));
        assert!(CmpOp::Eq.eval(Equal));
    }

    #[test]
    fn bool_eval() {
        assert!(BoolOp::And.eval(true, true));
        assert!(!BoolOp::And.eval(true, false));
        assert!(BoolOp::Or.eval(false, true));
        assert!(BoolOp::Xor.eval(true, false));
        assert!(!BoolOp::Xor.eval(true, true));
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(5u32), Operand::Imm(5));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
        assert_eq!(Operand::imm_f32(1.0), Operand::Imm(1.0f32.to_bits()));
    }

    #[test]
    fn dst_and_src_regs() {
        let op = Op::IMad {
            d: Reg(4),
            a: Reg(0),
            b: Operand::Const(3),
            c: Operand::Reg(Reg(3)),
        };
        assert_eq!(op.dst_reg(), Some(Reg(4)));
        assert_eq!(op.src_regs(), vec![Reg(0), Reg(3)]);

        let st = Op::St {
            space: MemSpace::Global,
            a: Reg(2),
            off: 4,
            v: Reg(5),
        };
        assert_eq!(st.dst_reg(), None);
        assert_eq!(st.src_regs(), vec![Reg(2), Reg(5)]);
        assert!(st.is_mem());
        assert!(!st.is_load());
    }

    #[test]
    fn instr_class_partitioning() {
        // Every gp-dest op maps to an injectable class; everything else
        // to Other. Index/label/from_label round-trip across ALL.
        let mov = Op::Mov {
            d: Reg(0),
            a: Operand::Imm(1),
        };
        assert_eq!(mov.instr_class(), InstrClass::Mov);
        assert_eq!(
            Op::FFma {
                d: Reg(1),
                a: Reg(0),
                b: Operand::Imm(0),
                c: Operand::Imm(0)
            }
            .instr_class(),
            InstrClass::FpAlu
        );
        assert_eq!(
            Op::FRcp {
                d: Reg(1),
                a: Reg(0)
            }
            .instr_class(),
            InstrClass::Sfu
        );
        assert_eq!(
            Op::Ld {
                d: Reg(1),
                space: MemSpace::Shared,
                a: Reg(0),
                off: 0
            }
            .instr_class(),
            InstrClass::Ld
        );
        assert_eq!(Op::Bar.instr_class(), InstrClass::Other);
        assert_eq!(InstrClass::Other.index(), None);
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), Some(i));
            assert_eq!(InstrClass::from_label(c.label()), Some(*c));
        }
        assert_eq!(InstrClass::from_label("bogus"), None);
    }

    #[test]
    fn gp_dest_classification() {
        assert!(Op::Mov {
            d: Reg(0),
            a: Operand::Imm(1)
        }
        .has_gp_dest());
        assert!(!Op::Bar.has_gp_dest());
        assert!(!Op::Bra {
            target: 0,
            reconv: 1
        }
        .has_gp_dest());
        assert!(!Op::St {
            space: MemSpace::Shared,
            a: Reg(0),
            off: 0,
            v: Reg(1)
        }
        .has_gp_dest());
        assert!(Op::Ld {
            d: Reg(1),
            space: MemSpace::Global,
            a: Reg(0),
            off: 0
        }
        .has_gp_dest());
    }
}
