//! Register name types: general-purpose, predicate, and special registers.

use std::fmt;

/// A general-purpose 32-bit register, `R0`..`R{num_regs-1}`.
///
/// The architectural register count of a kernel is declared in
/// [`crate::Kernel::num_regs`]; the simulator allocates that many physical
/// registers per thread from the SM register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A 1-bit predicate register, `P0`..`P3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pred(pub u8);

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Special (read-only) registers exposing thread and grid identity,
/// read with the `S2R` instruction — the analogue of `SR_TID.X`,
/// `SR_CTAID.X` etc. in SASS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the CTA (blocks are one-dimensional).
    TidX,
    /// CTA index along X.
    CtaIdX,
    /// CTA index along Y. Used by the TMR hardening transform to select the
    /// redundant copy a CTA belongs to; it is 0 for unhardened launches.
    CtaIdY,
    /// Number of threads per CTA.
    NTidX,
    /// Number of CTAs along X.
    NCtaIdX,
    /// Lane index within the warp (0..31).
    LaneId,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::CtaIdY => "SR_CTAID.Y",
            SpecialReg::NTidX => "SR_NTID.X",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::LaneId => "SR_LANEID",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg(7).to_string(), "R7");
        assert_eq!(Pred(2).to_string(), "P2");
        assert_eq!(SpecialReg::TidX.to_string(), "SR_TID.X");
        assert_eq!(SpecialReg::CtaIdY.to_string(), "SR_CTAID.Y");
    }

    #[test]
    fn reg_ordering_follows_index() {
        assert!(Reg(3) < Reg(10));
    }
}
