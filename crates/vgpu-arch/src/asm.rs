//! Assembler DSL for writing kernels with structured SIMT control flow.
//!
//! Hand-writing reconvergence points is error prone, so the builder exposes
//! structured constructs — [`KernelBuilder::if_then`],
//! [`KernelBuilder::if_then_else`], [`KernelBuilder::loop_while`] — and
//! computes branch targets and immediate-post-dominator reconvergence PCs
//! itself. Registers can be allocated sequentially ([`KernelBuilder::reg`])
//! or named explicitly; shared memory is handed out by a bump allocator
//! ([`KernelBuilder::alloc_smem`]).

use crate::instr::{Guard, Instr};
use crate::kernel::{Kernel, ValidateError};
use crate::op::{BoolOp, CmpOp, MemSpace, Op, Operand};
use crate::reg::{Pred, Reg, SpecialReg};

/// Incremental kernel assembler. See the module docs for an overview.
///
/// # Example
///
/// ```
/// use vgpu_arch::{KernelBuilder, CmpOp, MemSpace};
///
/// let mut a = KernelBuilder::new("saxpy_like");
/// let (gid, tmp, x, p) = (a.reg(), a.reg(), a.reg(), a.pred());
/// a.linear_tid(gid, tmp);                    // gid = ctaid.x * ntid.x + tid.x
/// a.mov(tmp, a.param(1));                    // n
/// a.isetp(p, gid, tmp, CmpOp::Lt, true);     // p = gid < n
/// a.if_then(p, false, |a| {
///     let addr = a.reg();
///     a.mov(addr, a.param(0));               // base pointer
///     a.iscadd(addr, gid, addr, 2);          // addr = base + 4*gid
///     a.ld(x, MemSpace::Global, addr, 0);
///     a.fadd(x, x, 1.0f32);
///     a.st(MemSpace::Global, addr, 0, x);
/// });
/// let k = a.build().unwrap();
/// assert!(k.num_regs >= 4);
/// ```
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    smem_bytes: u32,
    next_reg: u8,
    next_pred: u8,
    ambient: Option<Guard>,
}

impl KernelBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            smem_bytes: 0,
            next_reg: 0,
            next_pred: 0,
            ambient: None,
        }
    }

    /// Allocate the next free general-purpose register.
    ///
    /// # Panics
    /// Panics after 64 registers — more than any of our kernels need and a
    /// realistic per-thread architectural limit.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 64, "register allocator exhausted");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate the next free predicate register (max 4).
    pub fn pred(&mut self) -> Pred {
        assert!(
            self.next_pred < crate::NUM_PREDS,
            "predicate allocator exhausted"
        );
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Allocate `bytes` of static shared memory, returning the byte offset
    /// of the allocation (word aligned).
    pub fn alloc_smem(&mut self, bytes: u32) -> u32 {
        let off = self.smem_bytes;
        self.smem_bytes += bytes.div_ceil(4) * 4;
        off
    }

    /// Constant-bank operand for kernel parameter word `i`.
    pub fn param(&self, i: u16) -> Operand {
        Operand::Const(i)
    }

    /// Current PC (index of the next instruction to be emitted).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Emit a raw (optionally ambient-guarded) op.
    pub fn emit(&mut self, op: Op) {
        self.instrs.push(Instr {
            op,
            guard: self.ambient,
        });
    }

    /// Emit `op` under an explicit guard, ignoring the ambient guard.
    pub fn emit_guarded(&mut self, op: Op, pred: Pred, negate: bool) {
        self.instrs.push(Instr::guarded(op, pred, negate));
    }

    /// Run `f` with every emitted instruction predicated on `pred ^ negate`.
    /// Useful for short conditional sequences where a branch would be
    /// overkill (the SASS `@P` idiom).
    pub fn predicated(&mut self, pred: Pred, negate: bool, f: impl FnOnce(&mut Self)) {
        let saved = self.ambient;
        self.ambient = Some(Guard::new(pred, negate));
        f(self);
        self.ambient = saved;
    }

    // ---- instruction emitters -------------------------------------------

    pub fn s2r(&mut self, d: Reg, sr: SpecialReg) {
        self.emit(Op::S2R { d, sr });
    }
    pub fn mov(&mut self, d: Reg, a: impl Into<Operand>) {
        self.emit(Op::Mov { d, a: a.into() });
    }
    pub fn iadd(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::IAdd { d, a, b: b.into() });
    }
    pub fn isub(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::ISub { d, a, b: b.into() });
    }
    pub fn imul(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::IMul { d, a, b: b.into() });
    }
    pub fn imad(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, c: impl Into<Operand>) {
        self.emit(Op::IMad {
            d,
            a,
            b: b.into(),
            c: c.into(),
        });
    }
    /// `d = (a << shift) + b` — the scaled-index addressing idiom.
    pub fn iscadd(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, shift: u8) {
        self.emit(Op::IScAdd {
            d,
            a,
            b: b.into(),
            shift,
        });
    }
    pub fn imin(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, signed: bool) {
        self.emit(Op::IMnMx {
            d,
            a,
            b: b.into(),
            max: false,
            signed,
        });
    }
    pub fn imax(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, signed: bool) {
        self.emit(Op::IMnMx {
            d,
            a,
            b: b.into(),
            max: true,
            signed,
        });
    }
    pub fn shl(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::Shl { d, a, b: b.into() });
    }
    pub fn shr(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::Shr { d, a, b: b.into() });
    }
    pub fn and(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::And { d, a, b: b.into() });
    }
    pub fn or(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::Or { d, a, b: b.into() });
    }
    pub fn xor(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::Xor { d, a, b: b.into() });
    }
    pub fn not(&mut self, d: Reg, a: Reg) {
        self.emit(Op::Not { d, a });
    }
    pub fn fadd(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::FAdd { d, a, b: b.into() });
    }
    pub fn fmul(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::FMul { d, a, b: b.into() });
    }
    pub fn ffma(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, c: impl Into<Operand>) {
        self.emit(Op::FFma {
            d,
            a,
            b: b.into(),
            c: c.into(),
        });
    }
    pub fn fmin(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::FMnMx {
            d,
            a,
            b: b.into(),
            max: false,
        });
    }
    pub fn fmax(&mut self, d: Reg, a: Reg, b: impl Into<Operand>) {
        self.emit(Op::FMnMx {
            d,
            a,
            b: b.into(),
            max: true,
        });
    }
    pub fn frcp(&mut self, d: Reg, a: Reg) {
        self.emit(Op::FRcp { d, a });
    }
    pub fn fsqrt(&mut self, d: Reg, a: Reg) {
        self.emit(Op::FSqrt { d, a });
    }
    pub fn fexp(&mut self, d: Reg, a: Reg) {
        self.emit(Op::FExp { d, a });
    }
    pub fn flog(&mut self, d: Reg, a: Reg) {
        self.emit(Op::FLog { d, a });
    }
    pub fn fabs(&mut self, d: Reg, a: Reg) {
        self.emit(Op::FAbs { d, a });
    }
    pub fn i2f(&mut self, d: Reg, a: Reg) {
        self.emit(Op::I2F { d, a });
    }
    pub fn f2i(&mut self, d: Reg, a: Reg) {
        self.emit(Op::F2I { d, a });
    }
    pub fn isetp(&mut self, p: Pred, a: Reg, b: impl Into<Operand>, cmp: CmpOp, signed: bool) {
        self.emit(Op::ISetP {
            p,
            a,
            b: b.into(),
            cmp,
            signed,
        });
    }
    pub fn fsetp(&mut self, p: Pred, a: Reg, b: impl Into<Operand>, cmp: CmpOp) {
        self.emit(Op::FSetP {
            p,
            a,
            b: b.into(),
            cmp,
        });
    }
    pub fn psetp(&mut self, p: Pred, a: Pred, b: Pred, op: BoolOp, na: bool, nb: bool) {
        self.emit(Op::PSetP {
            p,
            a,
            b,
            op,
            na,
            nb,
        });
    }
    pub fn sel(&mut self, d: Reg, a: Reg, b: impl Into<Operand>, p: Pred, neg: bool) {
        self.emit(Op::Sel {
            d,
            a,
            b: b.into(),
            p,
            neg,
        });
    }
    pub fn ld(&mut self, d: Reg, space: MemSpace, a: Reg, off: i32) {
        self.emit(Op::Ld { d, space, a, off });
    }
    pub fn st(&mut self, space: MemSpace, a: Reg, off: i32, v: Reg) {
        self.emit(Op::St { space, a, off, v });
    }
    pub fn bar(&mut self) {
        self.emit(Op::Bar);
    }
    pub fn exit(&mut self) {
        self.emit(Op::Exit);
    }

    // ---- composite helpers ----------------------------------------------

    /// `d = ctaid.x * ntid.x + tid.x` — the global linear thread id.
    /// Clobbers `tmp`.
    pub fn linear_tid(&mut self, d: Reg, tmp: Reg) {
        self.s2r(d, SpecialReg::CtaIdX);
        self.s2r(tmp, SpecialReg::NTidX);
        self.imul(d, d, tmp);
        self.s2r(tmp, SpecialReg::TidX);
        self.iadd(d, d, tmp);
    }

    // ---- structured control flow ----------------------------------------

    /// Execute `body` in lanes where `pred ^ negate` is true.
    pub fn if_then(&mut self, pred: Pred, negate: bool, body: impl FnOnce(&mut Self)) {
        // Lanes failing the condition jump to the end; reconvergence there.
        let bra_pc = self.instrs.len();
        self.emit_guarded(
            Op::Bra {
                target: 0,
                reconv: 0,
            },
            pred,
            !negate,
        );
        body(self);
        let end = self.here();
        if let Op::Bra { target, reconv } = &mut self.instrs[bra_pc].op {
            *target = end;
            *reconv = end;
        }
    }

    /// Execute `then_body` in lanes where the condition holds, `else_body`
    /// in the rest.
    pub fn if_then_else(
        &mut self,
        pred: Pred,
        negate: bool,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let bra_to_else = self.instrs.len();
        self.emit_guarded(
            Op::Bra {
                target: 0,
                reconv: 0,
            },
            pred,
            !negate,
        );
        then_body(self);
        let bra_to_end = self.instrs.len();
        self.emit(Op::Bra {
            target: 0,
            reconv: 0,
        });
        let else_start = self.here();
        else_body(self);
        let end = self.here();
        if let Op::Bra { target, reconv } = &mut self.instrs[bra_to_else].op {
            *target = else_start;
            *reconv = end;
        }
        if let Op::Bra { target, reconv } = &mut self.instrs[bra_to_end].op {
            *target = end;
            *reconv = end;
        }
    }

    /// Post-tested loop: run `body`, which must return the continue
    /// condition `(pred, negate)`; lanes where it holds branch back to the
    /// top. Equivalent to `do { body } while (pred ^ negate)`.
    pub fn loop_while(&mut self, body: impl FnOnce(&mut Self) -> (Pred, bool)) {
        let start = self.here();
        let (pred, negate) = body(self);
        let reconv = self.here() + 1;
        self.emit_guarded(
            Op::Bra {
                target: start,
                reconv,
            },
            pred,
            negate,
        );
    }

    /// Finish the kernel: appends `EXIT` if missing, computes the register
    /// high-water mark, and validates.
    pub fn build(mut self) -> Result<Kernel, ValidateError> {
        if !matches!(self.instrs.last().map(|i| i.op), Some(Op::Exit)) {
            self.exit();
        }
        let mut max_reg = 0u16;
        for i in &self.instrs {
            if let Some(d) = i.op.dst_reg() {
                max_reg = max_reg.max(d.0 as u16 + 1);
            }
            for r in i.op.src_regs() {
                max_reg = max_reg.max(r.0 as u16 + 1);
            }
        }
        let num_regs = (max_reg.max(self.next_reg as u16).max(1)) as u8;
        Kernel::new(self.name, self.instrs, num_regs, self.smem_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_and_counts_regs() {
        let mut a = KernelBuilder::new("t");
        let r0 = a.reg();
        let r1 = a.reg();
        assert_eq!((r0, r1), (Reg(0), Reg(1)));
        a.mov(r0, 1u32);
        a.iadd(r1, r0, 2u32);
        let k = a.build().unwrap();
        assert_eq!(k.num_regs, 2);
        assert!(matches!(k.instrs.last().unwrap().op, Op::Exit));
    }

    #[test]
    fn smem_allocator_aligns() {
        let mut a = KernelBuilder::new("t");
        assert_eq!(a.alloc_smem(6), 0);
        assert_eq!(a.alloc_smem(4), 8);
        a.exit();
        let k = a.build().unwrap();
        assert_eq!(k.smem_bytes, 12);
    }

    #[test]
    fn if_then_patches_branch() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        let p = a.pred();
        a.isetp(p, r, 0u32, CmpOp::Lt, true);
        a.if_then(p, false, |a| {
            a.mov(r, 42u32);
            a.mov(r, 43u32);
        });
        let k = a.build().unwrap();
        // instrs: 0 isetp, 1 bra, 2 mov, 3 mov, 4 exit
        match k.instrs[1].op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected Bra, got {other:?}"),
        }
        let g = k.instrs[1].guard.unwrap();
        assert_eq!(g.pred, p);
        assert!(g.negate, "branch taken when condition is false");
    }

    #[test]
    fn if_then_else_patches_both_branches() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        let p = a.pred();
        a.isetp(p, r, 0u32, CmpOp::Eq, true);
        a.if_then_else(p, false, |a| a.mov(r, 1u32), |a| a.mov(r, 2u32));
        let k = a.build().unwrap();
        // 0 isetp, 1 bra->else(4) rc=5, 2 mov(then), 3 bra->5 rc=5, 4 mov(else), 5 exit
        match k.instrs[1].op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 5);
            }
            ref o => panic!("{o:?}"),
        }
        match k.instrs[3].op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 5);
                assert_eq!(reconv, 5);
            }
            ref o => panic!("{o:?}"),
        }
        assert!(
            k.instrs[3].guard.is_none(),
            "jump over else is unconditional"
        );
    }

    #[test]
    fn loop_while_branches_backward() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        a.mov(r, 0u32);
        a.loop_while(|a| {
            let p = a.pred();
            a.iadd(r, r, 1u32);
            a.isetp(p, r, 10u32, CmpOp::Lt, true);
            (p, false)
        });
        let k = a.build().unwrap();
        // 0 mov, 1 iadd, 2 isetp, 3 bra->1 rc=4, 4 exit
        match k.instrs[3].op {
            Op::Bra { target, reconv } => {
                assert_eq!(target, 1);
                assert_eq!(reconv, 4);
            }
            ref o => panic!("{o:?}"),
        }
        assert!(!k.instrs[3].guard.unwrap().negate);
    }

    #[test]
    fn predicated_sets_ambient_guard() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        let p = a.pred();
        a.predicated(p, true, |a| a.mov(r, 7u32));
        a.mov(r, 8u32);
        let k = a.build().unwrap();
        assert_eq!(k.instrs[0].guard, Some(Guard::new(p, true)));
        assert_eq!(k.instrs[1].guard, None);
    }

    #[test]
    fn linear_tid_shape() {
        let mut a = KernelBuilder::new("t");
        let d = a.reg();
        let t = a.reg();
        a.linear_tid(d, t);
        let k = a.build().unwrap();
        assert_eq!(k.len(), 6); // 5 + exit
        assert!(matches!(
            k.instrs[0].op,
            Op::S2R {
                sr: SpecialReg::CtaIdX,
                ..
            }
        ));
    }

    #[test]
    fn nested_control_flow_validates() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        let p = a.pred();
        let q = a.pred();
        a.isetp(p, r, 0u32, CmpOp::Ge, true);
        a.if_then(p, false, |a| {
            a.loop_while(|a| {
                a.iadd(r, r, 1u32);
                a.isetp(q, r, 4u32, CmpOp::Lt, true);
                (q, false)
            });
        });
        assert!(a.build().is_ok());
    }
}
