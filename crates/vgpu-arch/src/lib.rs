//! # vgpu-arch — a SASS-like SIMT GPU instruction set architecture
//!
//! This crate defines the virtual GPU ISA executed by the [`vgpu-sim`]
//! microarchitecture simulator. It is modeled on NVIDIA SASS as seen through
//! GPGPU-Sim: 32-bit general-purpose registers, predicate registers,
//! special registers for thread/CTA identity, a constant bank for kernel
//! parameters, explicit global/shared/texture memory spaces, CTA-wide
//! barriers, and branch instructions that carry an immediate-post-dominator
//! reconvergence point for stack-based SIMT divergence handling.
//!
//! The crate provides:
//!
//! * [`Op`] / [`Instr`] — the instruction set, with optional predication.
//! * [`Kernel`] — a validated program plus its static resource footprint
//!   (architectural registers per thread, static shared memory per CTA).
//! * [`KernelBuilder`] — an assembler DSL with structured control flow
//!   (`if_then`, `if_then_else`, `loop_while`) that computes reconvergence
//!   points so hand-written kernels cannot get divergence wrong.
//! * A disassembler (`Display` impls) used in diagnostics and in the
//!   register-reuse example reproducing Figure 12 of the paper.
//!
//! [`vgpu-sim`]: ../vgpu_sim/index.html

pub mod asm;
pub mod instr;
pub mod kernel;
pub mod op;
pub mod reg;

pub use asm::KernelBuilder;
pub use instr::{Guard, Instr};
pub use kernel::{Kernel, LaunchConfig, ValidateError};
pub use op::{BoolOp, CmpOp, InstrClass, MemSpace, Op, Operand};
pub use reg::{Pred, Reg, SpecialReg};

/// Number of threads in a warp. Fixed at 32, as on all NVIDIA hardware.
pub const WARP_SIZE: usize = 32;

/// Number of predicate registers per thread.
pub const NUM_PREDS: u8 = 4;
