//! Predicated instructions: an [`Op`] plus an optional guard.

use crate::op::Op;
use crate::reg::Pred;
use std::fmt;

/// A predication guard: the instruction executes in lanes where
/// `pred ^ negate` is true (`@P2` or `@!P2` in SASS notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    pub pred: Pred,
    pub negate: bool,
}

impl Guard {
    pub fn new(pred: Pred, negate: bool) -> Self {
        Guard { pred, negate }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// One (optionally predicated) instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instr {
    pub op: Op,
    pub guard: Option<Guard>,
}

impl Instr {
    pub fn new(op: Op) -> Self {
        Instr { op, guard: None }
    }

    pub fn guarded(op: Op, pred: Pred, negate: bool) -> Self {
        Instr {
            op,
            guard: Some(Guard::new(pred, negate)),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.op)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self {
            S2R { d, sr } => write!(f, "S2R {d}, {sr}"),
            Mov { d, a } => write!(f, "MOV {d}, {a}"),
            IAdd { d, a, b } => write!(f, "IADD {d}, {a}, {b}"),
            ISub { d, a, b } => write!(f, "ISUB {d}, {a}, {b}"),
            IMul { d, a, b } => write!(f, "IMUL {d}, {a}, {b}"),
            IMad { d, a, b, c } => write!(f, "IMAD {d}, {a}, {b}, {c}"),
            IScAdd { d, a, b, shift } => write!(f, "ISCADD {d}, {a}, {b}, {shift:#x}"),
            IMnMx {
                d,
                a,
                b,
                max,
                signed,
            } => {
                let m = if *max { "MAX" } else { "MIN" };
                let s = if *signed { "S32" } else { "U32" };
                write!(f, "IMNMX.{m}.{s} {d}, {a}, {b}")
            }
            Shl { d, a, b } => write!(f, "SHL {d}, {a}, {b}"),
            Shr { d, a, b } => write!(f, "SHR {d}, {a}, {b}"),
            And { d, a, b } => write!(f, "LOP.AND {d}, {a}, {b}"),
            Or { d, a, b } => write!(f, "LOP.OR {d}, {a}, {b}"),
            Xor { d, a, b } => write!(f, "LOP.XOR {d}, {a}, {b}"),
            Not { d, a } => write!(f, "LOP.NOT {d}, {a}"),
            FAdd { d, a, b } => write!(f, "FADD {d}, {a}, {b}"),
            FMul { d, a, b } => write!(f, "FMUL {d}, {a}, {b}"),
            FFma { d, a, b, c } => write!(f, "FFMA {d}, {a}, {b}, {c}"),
            FMnMx { d, a, b, max } => {
                write!(
                    f,
                    "FMNMX.{} {d}, {a}, {b}",
                    if *max { "MAX" } else { "MIN" }
                )
            }
            FRcp { d, a } => write!(f, "MUFU.RCP {d}, {a}"),
            FSqrt { d, a } => write!(f, "MUFU.SQRT {d}, {a}"),
            FExp { d, a } => write!(f, "MUFU.EX2 {d}, {a}"),
            FLog { d, a } => write!(f, "MUFU.LG2 {d}, {a}"),
            FAbs { d, a } => write!(f, "FABS {d}, {a}"),
            I2F { d, a } => write!(f, "I2F {d}, {a}"),
            F2I { d, a } => write!(f, "F2I {d}, {a}"),
            ISetP {
                p,
                a,
                b,
                cmp,
                signed,
            } => {
                let s = if *signed { "S32" } else { "U32" };
                write!(f, "ISETP.{cmp}.{s} {p}, {a}, {b}")
            }
            FSetP { p, a, b, cmp } => write!(f, "FSETP.{cmp} {p}, {a}, {b}"),
            PSetP {
                p,
                a,
                b,
                op,
                na,
                nb,
            } => {
                let o = match op {
                    crate::op::BoolOp::And => "AND",
                    crate::op::BoolOp::Or => "OR",
                    crate::op::BoolOp::Xor => "XOR",
                };
                let an = if *na { "!" } else { "" };
                let bn = if *nb { "!" } else { "" };
                write!(f, "PSETP.{o} {p}, {an}{a}, {bn}{b}")
            }
            Sel { d, a, b, p, neg } => {
                let n = if *neg { "!" } else { "" };
                write!(f, "SEL {d}, {a}, {b}, {n}{p}")
            }
            Ld { d, space, a, off } => {
                write!(
                    f,
                    "LD.{space} {d}, [{a}{}{:#x}]",
                    if *off < 0 { "-" } else { "+" },
                    off.unsigned_abs()
                )
            }
            St { space, a, off, v } => {
                write!(
                    f,
                    "ST.{space} [{a}{}{:#x}], {v}",
                    if *off < 0 { "-" } else { "+" },
                    off.unsigned_abs()
                )
            }
            Bar => write!(f, "BAR.SYNC 0x0"),
            Bra { target, reconv } => write!(f, "BRA {target:#x} (reconv {reconv:#x})"),
            Exit => write!(f, "EXIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MemSpace, Operand};
    use crate::reg::Reg;

    #[test]
    fn guarded_display() {
        let i = Instr::guarded(Op::Exit, Pred(0), true);
        assert_eq!(i.to_string(), "@!P0 EXIT");
        let i = Instr::guarded(
            Op::Mov {
                d: Reg(1),
                a: Operand::Imm(0x10),
            },
            Pred(3),
            false,
        );
        assert_eq!(i.to_string(), "@P3 MOV R1, 0x10");
    }

    #[test]
    fn memory_display() {
        let i = Instr::new(Op::Ld {
            d: Reg(3),
            space: MemSpace::Global,
            a: Reg(2),
            off: 4,
        });
        assert_eq!(i.to_string(), "LD.GLOBAL R3, [R2+0x4]");
        let i = Instr::new(Op::St {
            space: MemSpace::Shared,
            a: Reg(2),
            off: -8,
            v: Reg(1),
        });
        assert_eq!(i.to_string(), "ST.SHARED [R2-0x8], R1");
    }
}
