//! Kernels (validated programs) and launch configurations.

use crate::instr::Instr;
use crate::op::Op;
use crate::reg::Reg;
use crate::{NUM_PREDS, WARP_SIZE};
use std::fmt;

/// A validated GPU kernel: its instruction stream plus the static resource
/// footprint the hardware needs to reserve per thread / per CTA.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub name: String,
    pub instrs: Vec<Instr>,
    /// Architectural general-purpose registers per thread.
    pub num_regs: u8,
    /// Static shared memory per CTA in bytes (word aligned).
    pub smem_bytes: u32,
}

/// Errors found by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    Empty,
    MissingExit,
    RegOutOfRange { pc: usize, reg: Reg, num_regs: u8 },
    PredOutOfRange { pc: usize, pred: u8 },
    BranchOutOfRange { pc: usize, target: u32 },
    StoreToTexture { pc: usize },
    ReconvOutOfRange { pc: usize, reconv: u32 },
    SmemUnaligned { smem_bytes: u32 },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "kernel has no instructions"),
            ValidateError::MissingExit => write!(f, "kernel does not end with EXIT"),
            ValidateError::RegOutOfRange { pc, reg, num_regs } => {
                write!(f, "pc {pc}: {reg} out of range (num_regs = {num_regs})")
            }
            ValidateError::PredOutOfRange { pc, pred } => {
                write!(f, "pc {pc}: P{pred} out of range")
            }
            ValidateError::BranchOutOfRange { pc, target } => {
                write!(f, "pc {pc}: branch target {target} out of range")
            }
            ValidateError::StoreToTexture { pc } => {
                write!(f, "pc {pc}: store to read-only texture space")
            }
            ValidateError::ReconvOutOfRange { pc, reconv } => {
                write!(f, "pc {pc}: reconvergence point {reconv} out of range")
            }
            ValidateError::SmemUnaligned { smem_bytes } => {
                write!(f, "shared memory size {smem_bytes} is not word aligned")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Kernel {
    /// Construct and validate a kernel.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        num_regs: u8,
        smem_bytes: u32,
    ) -> Result<Self, ValidateError> {
        let k = Kernel {
            name: name.into(),
            instrs,
            num_regs,
            smem_bytes,
        };
        k.validate()?;
        Ok(k)
    }

    /// Check structural well-formedness: register/predicate indices in range,
    /// branch targets and reconvergence points inside the program, word
    /// aligned shared memory, and a terminating `EXIT`.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.instrs.is_empty() {
            return Err(ValidateError::Empty);
        }
        if !matches!(self.instrs.last().map(|i| i.op), Some(Op::Exit)) {
            return Err(ValidateError::MissingExit);
        }
        if !self.smem_bytes.is_multiple_of(4) {
            return Err(ValidateError::SmemUnaligned {
                smem_bytes: self.smem_bytes,
            });
        }
        let len = self.instrs.len() as u32;
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(g) = &instr.guard {
                if g.pred.0 >= NUM_PREDS {
                    return Err(ValidateError::PredOutOfRange { pc, pred: g.pred.0 });
                }
            }
            let check_reg = |r: Reg| -> Result<(), ValidateError> {
                if r.0 >= self.num_regs {
                    Err(ValidateError::RegOutOfRange {
                        pc,
                        reg: r,
                        num_regs: self.num_regs,
                    })
                } else {
                    Ok(())
                }
            };
            if let Some(d) = instr.op.dst_reg() {
                check_reg(d)?;
            }
            for r in instr.op.src_regs() {
                check_reg(r)?;
            }
            match instr.op {
                Op::ISetP { p, .. } | Op::FSetP { p, .. } if p.0 >= NUM_PREDS => {
                    return Err(ValidateError::PredOutOfRange { pc, pred: p.0 });
                }
                Op::PSetP { p, a, b, .. } => {
                    for q in [p, a, b] {
                        if q.0 >= NUM_PREDS {
                            return Err(ValidateError::PredOutOfRange { pc, pred: q.0 });
                        }
                    }
                }
                Op::Sel { p, .. } if p.0 >= NUM_PREDS => {
                    return Err(ValidateError::PredOutOfRange { pc, pred: p.0 });
                }
                Op::St {
                    space: crate::op::MemSpace::Tex,
                    ..
                } => {
                    return Err(ValidateError::StoreToTexture { pc });
                }
                Op::Bra { target, reconv } => {
                    if target >= len {
                        return Err(ValidateError::BranchOutOfRange { pc, target });
                    }
                    if reconv >= len {
                        return Err(ValidateError::ReconvOutOfRange { pc, reconv });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the kernel has no instructions (never true for validated
    /// kernels).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Disassembly listing with PC labels.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            ".kernel {} (regs={}, smem={}B)",
            self.name, self.num_regs, self.smem_bytes
        );
        for (pc, i) in self.instrs.iter().enumerate() {
            let _ = writeln!(s, "  #{pc:<4} {i}");
        }
        s
    }
}

/// A kernel launch configuration.
///
/// Blocks are one-dimensional (`block_x` threads per CTA). Grids are
/// two-dimensional: `grid_x` CTAs of payload, with `grid_y` redundant
/// copies of the whole grid. Unhardened launches use `grid_y == 1`; the
/// TMR transform launches with `grid_y == 3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid_x: u32,
    pub grid_y: u32,
    pub block_x: u32,
    /// Kernel parameters: the constant bank contents (pointers & scalars).
    pub params: Vec<u32>,
}

impl LaunchConfig {
    pub fn new(grid_x: u32, block_x: u32, params: Vec<u32>) -> Self {
        LaunchConfig {
            grid_x,
            grid_y: 1,
            block_x,
            params,
        }
    }

    /// Total CTAs launched.
    pub fn num_ctas(&self) -> u64 {
        self.grid_x as u64 * self.grid_y as u64
    }

    /// Total threads launched.
    pub fn num_threads(&self) -> u64 {
        self.num_ctas() * self.block_x as u64
    }

    /// Warps per CTA (blocks are padded to a whole number of warps).
    pub fn warps_per_cta(&self) -> u32 {
        self.block_x.div_ceil(WARP_SIZE as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, Operand};
    use crate::reg::Pred;

    fn exit() -> Instr {
        Instr::new(Op::Exit)
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(
            Kernel::new("k", vec![], 4, 0).unwrap_err(),
            ValidateError::Empty
        );
    }

    #[test]
    fn missing_exit_rejected() {
        let i = Instr::new(Op::Mov {
            d: Reg(0),
            a: Operand::Imm(0),
        });
        assert_eq!(
            Kernel::new("k", vec![i], 4, 0).unwrap_err(),
            ValidateError::MissingExit
        );
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let i = Instr::new(Op::Mov {
            d: Reg(9),
            a: Operand::Imm(0),
        });
        let err = Kernel::new("k", vec![i, exit()], 4, 0).unwrap_err();
        assert!(matches!(
            err,
            ValidateError::RegOutOfRange { reg: Reg(9), .. }
        ));
    }

    #[test]
    fn source_reg_out_of_range_rejected() {
        let i = Instr::new(Op::IAdd {
            d: Reg(0),
            a: Reg(7),
            b: Operand::Imm(1),
        });
        let err = Kernel::new("k", vec![i, exit()], 4, 0).unwrap_err();
        assert!(matches!(
            err,
            ValidateError::RegOutOfRange { reg: Reg(7), .. }
        ));
    }

    #[test]
    fn branch_bounds_checked() {
        let i = Instr::new(Op::Bra {
            target: 5,
            reconv: 1,
        });
        let err = Kernel::new("k", vec![i, exit()], 4, 0).unwrap_err();
        assert!(matches!(
            err,
            ValidateError::BranchOutOfRange { target: 5, .. }
        ));

        let i = Instr::new(Op::Bra {
            target: 1,
            reconv: 9,
        });
        let err = Kernel::new("k", vec![i, exit()], 4, 0).unwrap_err();
        assert!(matches!(
            err,
            ValidateError::ReconvOutOfRange { reconv: 9, .. }
        ));
    }

    #[test]
    fn pred_out_of_range_rejected() {
        let i = Instr::guarded(Op::Exit, Pred(7), false);
        let err = Kernel::new("k", vec![i, exit()], 4, 0).unwrap_err();
        assert!(matches!(err, ValidateError::PredOutOfRange { pred: 7, .. }));
    }

    #[test]
    fn unaligned_smem_rejected() {
        let err = Kernel::new("k", vec![exit()], 4, 6).unwrap_err();
        assert_eq!(err, ValidateError::SmemUnaligned { smem_bytes: 6 });
    }

    #[test]
    fn valid_kernel_accepted() {
        let instrs = vec![
            Instr::new(Op::Mov {
                d: Reg(0),
                a: Operand::Imm(1),
            }),
            exit(),
        ];
        let k = Kernel::new("ok", instrs, 4, 16).unwrap();
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert!(k.disassemble().contains("MOV R0, 0x1"));
    }

    #[test]
    fn launch_config_arithmetic() {
        let lc = LaunchConfig {
            grid_x: 10,
            grid_y: 3,
            block_x: 100,
            params: vec![],
        };
        assert_eq!(lc.num_ctas(), 30);
        assert_eq!(lc.num_threads(), 3000);
        assert_eq!(lc.warps_per_cta(), 4);
        let lc = LaunchConfig::new(4, 64, vec![1, 2]);
        assert_eq!(lc.grid_y, 1);
        assert_eq!(lc.num_threads(), 256);
        assert_eq!(lc.warps_per_cta(), 2);
    }
}
