//! Property-based tests of the ISA layer: every program the builder can
//! produce validates, disassembles, and reports consistent def/use sets.

use proptest::prelude::*;
use vgpu_arch::{
    BoolOp, CmpOp, Instr, Kernel, KernelBuilder, MemSpace, Op, Operand, Pred, Reg, SpecialReg,
};

/// Strategy: an arbitrary ALU/control-free op over `nregs` registers.
fn arb_alu_op(nregs: u8) -> impl Strategy<Value = Op> {
    let reg = (0..nregs).prop_map(Reg);
    let operand = prop_oneof![
        (0..nregs).prop_map(|r| Operand::Reg(Reg(r))),
        any::<u32>().prop_map(Operand::Imm),
        (0u16..8).prop_map(Operand::Const),
    ];
    prop_oneof![
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::IAdd { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::ISub { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::IMul { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone(), operand.clone())
            .prop_map(|(d, a, b, c)| Op::IMad { d, a, b, c }),
        (reg.clone(), reg.clone(), operand.clone(), 0u8..31)
            .prop_map(|(d, a, b, shift)| Op::IScAdd { d, a, b, shift }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::And { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::Xor { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::Shl { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone()).prop_map(|(d, a, b)| Op::FAdd { d, a, b }),
        (reg.clone(), reg.clone(), operand.clone(), operand.clone())
            .prop_map(|(d, a, b, c)| Op::FFma { d, a, b, c }),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| Op::FSqrt { d, a }),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| Op::Not { d, a }),
        reg.clone().prop_map(|d| Op::S2R {
            d,
            sr: SpecialReg::TidX
        }),
        (0u8..4, reg.clone(), operand.clone()).prop_map(|(p, a, b)| Op::ISetP {
            p: Pred(p),
            a,
            b,
            cmp: CmpOp::Lt,
            signed: true
        }),
        (0u8..4, 0u8..4, 0u8..4).prop_map(|(p, a, b)| Op::PSetP {
            p: Pred(p),
            a: Pred(a),
            b: Pred(b),
            op: BoolOp::And,
            na: false,
            nb: false
        }),
    ]
}

proptest! {
    /// Any straight-line program over in-range registers validates.
    #[test]
    fn random_alu_programs_validate(ops in prop::collection::vec(arb_alu_op(12), 1..100)) {
        let mut instrs: Vec<Instr> = ops.into_iter().map(Instr::new).collect();
        instrs.push(Instr::new(Op::Exit));
        let k = Kernel::new("prop", instrs, 12, 0).expect("validates");
        prop_assert!(k.len() >= 2);
        // Disassembly never panics and mentions every PC.
        let d = k.disassemble();
        prop_assert!(d.lines().count() >= k.len());
    }

    /// def/use reporting: the destination register never appears spuriously,
    /// and every reported source register index is in range.
    #[test]
    fn def_use_sets_are_in_range(op in arb_alu_op(12)) {
        if let Some(d) = op.dst_reg() {
            prop_assert!(d.0 < 12);
        }
        for r in op.src_regs() {
            prop_assert!(r.0 < 12);
        }
    }

    /// Register pressure computed by the builder covers every register the
    /// program touches.
    #[test]
    fn builder_register_count_covers_uses(ops in prop::collection::vec(arb_alu_op(10), 1..50)) {
        let mut b = KernelBuilder::new("prop");
        for op in &ops {
            b.emit(*op);
        }
        let k = b.build().unwrap();
        for i in &k.instrs {
            if let Some(d) = i.op.dst_reg() {
                prop_assert!(d.0 < k.num_regs);
            }
            for r in i.op.src_regs() {
                prop_assert!(r.0 < k.num_regs);
            }
        }
    }

    /// Out-of-range register indices are always rejected.
    #[test]
    fn validation_rejects_out_of_range(reg in 8u8..64) {
        let instrs = vec![
            Instr::new(Op::Mov { d: Reg(reg), a: Operand::Imm(0) }),
            Instr::new(Op::Exit),
        ];
        prop_assert!(Kernel::new("bad", instrs, 8, 0).is_err());
    }

    /// Structured control flow from the builder always yields in-range
    /// branch targets and reconvergence points, at any nesting shape.
    #[test]
    fn structured_control_flow_always_validates(
        depth in 1usize..5,
        body_len in 1usize..6,
    ) {
        let mut b = KernelBuilder::new("prop");
        let r = b.reg();
        let p = b.pred();
        b.isetp(p, r, 1u32, CmpOp::Lt, true);
        fn nest(b: &mut KernelBuilder, r: Reg, p: Pred, depth: usize, body_len: usize) {
            b.if_then(p, false, |b| {
                for _ in 0..body_len {
                    b.iadd(r, r, 1u32);
                }
                if depth > 0 {
                    nest(b, r, p, depth - 1, body_len);
                }
            });
        }
        nest(&mut b, r, p, depth, body_len);
        prop_assert!(b.build().is_ok());
    }

    /// Texture stores never validate.
    #[test]
    fn texture_stores_rejected(off in -64i32..64) {
        let instrs = vec![
            Instr::new(Op::St { space: MemSpace::Tex, a: Reg(0), off, v: Reg(1) }),
            Instr::new(Op::Exit),
        ];
        prop_assert!(Kernel::new("bad", instrs, 4, 0).is_err());
    }
}
