//! Locks down the disassembly surface of every instruction form — the
//! human-readable contract used in diagnostics, DESIGN docs, and the
//! Figure-12 listing.

use vgpu_arch::{BoolOp, CmpOp, Instr, MemSpace, Op, Operand, Pred, Reg, SpecialReg};

fn d(op: Op) -> String {
    Instr::new(op).to_string()
}

#[test]
fn every_op_form_disassembles_as_documented() {
    let r = Reg;
    let cases: Vec<(Op, &str)> = vec![
        (
            Op::S2R {
                d: r(0),
                sr: SpecialReg::NCtaIdX,
            },
            "S2R R0, SR_NCTAID.X",
        ),
        (
            Op::S2R {
                d: r(1),
                sr: SpecialReg::LaneId,
            },
            "S2R R1, SR_LANEID",
        ),
        (
            Op::Mov {
                d: r(2),
                a: Operand::Const(3),
            },
            "MOV R2, c[0x0][0xc]",
        ),
        (
            Op::IAdd {
                d: r(0),
                a: r(1),
                b: Operand::Imm(16),
            },
            "IADD R0, R1, 0x10",
        ),
        (
            Op::ISub {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
            },
            "ISUB R0, R1, R2",
        ),
        (
            Op::IMul {
                d: r(0),
                a: r(1),
                b: Operand::Imm(3),
            },
            "IMUL R0, R1, 0x3",
        ),
        (
            Op::IMad {
                d: r(4),
                a: r(0),
                b: Operand::Const(0x53),
                c: Operand::Reg(r(3)),
            },
            "IMAD R4, R0, c[0x0][0x14c], R3",
        ),
        (
            Op::IScAdd {
                d: r(3),
                a: r(0),
                b: Operand::Const(0x50),
                shift: 2,
            },
            "ISCADD R3, R0, c[0x0][0x140], 0x2",
        ),
        (
            Op::IMnMx {
                d: r(0),
                a: r(1),
                b: Operand::Imm(0),
                max: false,
                signed: true,
            },
            "IMNMX.MIN.S32 R0, R1, 0x0",
        ),
        (
            Op::IMnMx {
                d: r(0),
                a: r(1),
                b: Operand::Imm(0),
                max: true,
                signed: false,
            },
            "IMNMX.MAX.U32 R0, R1, 0x0",
        ),
        (
            Op::Shl {
                d: r(0),
                a: r(1),
                b: Operand::Imm(2),
            },
            "SHL R0, R1, 0x2",
        ),
        (
            Op::Shr {
                d: r(0),
                a: r(1),
                b: Operand::Imm(2),
            },
            "SHR R0, R1, 0x2",
        ),
        (
            Op::And {
                d: r(0),
                a: r(1),
                b: Operand::Imm(7),
            },
            "LOP.AND R0, R1, 0x7",
        ),
        (
            Op::Or {
                d: r(0),
                a: r(1),
                b: Operand::Imm(7),
            },
            "LOP.OR R0, R1, 0x7",
        ),
        (
            Op::Xor {
                d: r(0),
                a: r(1),
                b: Operand::Imm(7),
            },
            "LOP.XOR R0, R1, 0x7",
        ),
        (Op::Not { d: r(0), a: r(1) }, "LOP.NOT R0, R1"),
        (
            Op::FAdd {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
            },
            "FADD R0, R1, R2",
        ),
        (
            Op::FMul {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
            },
            "FMUL R0, R1, R2",
        ),
        (
            Op::FFma {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
                c: Operand::Reg(r(3)),
            },
            "FFMA R0, R1, R2, R3",
        ),
        (
            Op::FMnMx {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
                max: true,
            },
            "FMNMX.MAX R0, R1, R2",
        ),
        (Op::FRcp { d: r(0), a: r(1) }, "MUFU.RCP R0, R1"),
        (Op::FSqrt { d: r(0), a: r(1) }, "MUFU.SQRT R0, R1"),
        (Op::FExp { d: r(0), a: r(1) }, "MUFU.EX2 R0, R1"),
        (Op::FLog { d: r(0), a: r(1) }, "MUFU.LG2 R0, R1"),
        (Op::FAbs { d: r(0), a: r(1) }, "FABS R0, R1"),
        (Op::I2F { d: r(0), a: r(1) }, "I2F R0, R1"),
        (Op::F2I { d: r(0), a: r(1) }, "F2I R0, R1"),
        (
            Op::ISetP {
                p: Pred(1),
                a: r(0),
                b: Operand::Imm(4),
                cmp: CmpOp::Ge,
                signed: false,
            },
            "ISETP.GE.U32 P1, R0, 0x4",
        ),
        (
            Op::FSetP {
                p: Pred(0),
                a: r(0),
                b: Operand::Reg(r(1)),
                cmp: CmpOp::Ne,
            },
            "FSETP.NE P0, R0, R1",
        ),
        (
            Op::PSetP {
                p: Pred(0),
                a: Pred(1),
                b: Pred(2),
                op: BoolOp::Or,
                na: true,
                nb: false,
            },
            "PSETP.OR P0, !P1, P2",
        ),
        (
            Op::Sel {
                d: r(0),
                a: r(1),
                b: Operand::Reg(r(2)),
                p: Pred(3),
                neg: true,
            },
            "SEL R0, R1, R2, !P3",
        ),
        (
            Op::Ld {
                d: r(0),
                space: MemSpace::Tex,
                a: r(1),
                off: 8,
            },
            "LD.TEX R0, [R1+0x8]",
        ),
        (
            Op::St {
                space: MemSpace::Global,
                a: r(1),
                off: 0,
                v: r(2),
            },
            "ST.GLOBAL [R1+0x0], R2",
        ),
        (Op::Bar, "BAR.SYNC 0x0"),
        (
            Op::Bra {
                target: 4,
                reconv: 9,
            },
            "BRA 0x4 (reconv 0x9)",
        ),
        (Op::Exit, "EXIT"),
    ];
    for (op, want) in cases {
        assert_eq!(d(op), want);
    }
}

#[test]
fn guards_prefix_the_disassembly() {
    let i = Instr::guarded(Op::Bar, Pred(2), false);
    assert_eq!(i.to_string(), "@P2 BAR.SYNC 0x0");
    let i = Instr::guarded(Op::Exit, Pred(1), true);
    assert_eq!(i.to_string(), "@!P1 EXIT");
}
