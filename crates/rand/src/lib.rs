//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build sandbox has no crates.io access, so the workspace vendors the
//! small subset of the `rand 0.8` API it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! splitmix64 — statistically solid for fault-site sampling, and fully
//! deterministic for a given seed (campaign reproducibility only requires
//! a fixed stream per seed, not upstream `rand`'s exact stream).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction, including the `seed_from_u64` convenience the
/// campaigns use for per-trial derivation.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // splitmix64-fill, as upstream rand does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing trait: blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `rand` uses for `SmallRng`
    /// on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let b: u8 = rng.gen_range(0..32);
            assert!(b < 32);
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let w: u32 = rng.gen_range(1..=u32::MAX);
            assert!(w >= 1);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "{hits}");
    }
}
