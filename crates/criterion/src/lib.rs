//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build sandbox has no crates.io access, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], per-group
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`
//! and [`Bencher::iter`]. Instead of criterion's statistical machinery it
//! reports min / mean / max wall time per iteration — enough to compare
//! hot paths between commits without external dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 30,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("ad-hoc");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let id = id.into();
        if b.samples.is_empty() {
            eprintln!("  {}/{id}: no samples", self.name);
            return self;
        }
        let min = b.samples.iter().copied().min().unwrap();
        let max = b.samples.iter().copied().max().unwrap();
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        eprintln!(
            "  {}/{id}: [{} {} {}] ({} samples)",
            self.name,
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max),
            b.samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: warm up, then collect up to `sample_size` samples
    /// within the measurement budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Batch so that very fast routines still get a measurable sample.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 10_000) as u64;
        let run_start = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size && run_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

/// Expands to a function running each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Expands to `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs_and_samples() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_dur(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(10)).contains("s"));
    }
}
