//! Vendored, registry-free stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`Strategy`] with `prop_map`, range and
//! tuple strategies, `any::<T>()`, [`prop_oneof!`], `prop::collection::
//! {vec, btree_set}`, `Just`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message;
//! * fewer default cases (64; override with `ProptestConfig::with_cases`
//!   or the `PROPTEST_CASES` env var);
//! * generation is seeded from the test name, so runs are deterministic
//!   unless `PROPTEST_RNG_SEED` overrides the base seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
    /// Mirror of upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// Per-test configuration. Only `cases` is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
    }

    /// Cases to actually run: env override wins.
    pub fn effective_cases(&self) -> u32 {
        Self::env_cases().unwrap_or(self.cases).max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeded from the test name (FNV-1a) xor an optional env base seed,
    /// so each test gets an independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5ee0_5ee0_5ee0_5ee0);
        let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        TestRng(SmallRng::seed_from_u64(base ^ h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A value generator. Upstream's `Strategy` carries a shrinking value
/// tree; this one just generates.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies — backs [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- primitive strategies -------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

/// `any::<T>()` for primitives. Integers are biased toward structurally
/// interesting values (zero, extremes) one time in eight, which partly
/// compensates for the missing shrinker.
#[derive(Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                match rng.next_u64() % 8 {
                    0 => match rng.next_u64() % 3 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        _ => <$t>::MIN,
                    },
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

// ---- tuple strategies -----------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collections -----------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        /// Inclusive upper bound.
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() % (self.hi - self.lo + 1) as u64) as usize
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below target; bail after enough
            // attempts so small domains (e.g. 0..3) cannot loop forever.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                set.len() >= self.size.lo.min(1),
                "could not reach minimum set size"
            );
            set
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Upstream-compatible test harness macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// In upstream these return early with a failure description that is then
/// shrunk; without shrinking a plain panic carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = (0u8..12, 5u32..10, 1u64..=3);
        for _ in 0..1000 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 12);
            assert!((5..10).contains(&b));
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        #[derive(Debug, PartialEq)]
        enum E {
            X(u8),
            Y(u8),
        }
        let s = prop_oneof![(0u8..4).prop_map(E::X), (10u8..14).prop_map(E::Y)];
        let mut rng = TestRng::for_test("oneof");
        let (mut xs, mut ys) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng) {
                E::X(v) => {
                    assert!(v < 4);
                    xs += 1;
                }
                E::Y(v) => {
                    assert!((10..14).contains(&v));
                    ys += 1;
                }
            }
        }
        assert!(xs > 0 && ys > 0);
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::for_test("coll");
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..100, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..1000, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
            let fixed = crate::collection::vec(any::<u32>(), 32usize).generate(&mut rng);
            assert_eq!(fixed.len(), 32);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = crate::collection::vec(any::<u64>(), 10usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, bodies and prop_asserts work.
        #[test]
        fn macro_roundtrip(x in 0u32..50, v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.iter().filter(|&&b| b > 3).count(), 0);
            prop_assert_ne!(v.len(), 0, "vec is non-empty");
        }
    }
}
