#!/usr/bin/env bash
# Fast-forward speedup measurement (docs/PERF.md): run the same uarch
# fault-injection campaigns with golden-prefix fast-forward on (the
# default) and off (--no-fast-forward), check the two classify
# byte-identically, write results/BENCH_5.json, and fail unless the
# aggregate speedup is at least 3x.
#
#   scripts/bench.sh            # default workload (LUD SRADv1 SCP, n=12)
#   APPS="VA" N=24 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APPS=${APPS:-"LUD SRADv1 SCP"}
N=${N:-12}
SEED=${SEED:-7}
THRESHOLD=${THRESHOLD:-3.0}
OUT=results/BENCH_5.json

echo "==> cargo build --release -p bench"
cargo build --release -q -p bench
CAMPAIGN=target/release/campaign

run_ms() { # app extra-flags... -> "wall_ms trials fingerprint"
  local app=$1
  shift
  local log s e
  log=$(mktemp)
  s=$(date +%s%N)
  "$CAMPAIGN" run --app "$app" --layer uarch --n "$N" --seed "$SEED" "$@" \
    > "$log" 2>&1
  e=$(date +%s%N)
  local trials fp
  trials=$(grep -oE 'plan: [0-9]+ trials' "$log" | grep -oE '[0-9]+')
  fp=$(grep -oE 'result fingerprint: 0x[0-9a-f]+' "$log" | grep -oE '0x[0-9a-f]+')
  rm -f "$log"
  echo "$(((e - s) / 1000000)) $trials $fp"
}

total_on_ms=0
total_off_ms=0
total_trials=0
rows=""
for app in $APPS; do
  # Warm up caches and the allocator before timing anything.
  "$CAMPAIGN" run --app "$app" --layer uarch --n 2 --seed "$SEED" > /dev/null 2>&1
  read -r on_ms trials fp_on <<< "$(run_ms "$app")"
  read -r off_ms _ fp_off <<< "$(run_ms "$app" --no-fast-forward)"
  if [ "$fp_on" != "$fp_off" ]; then
    echo "FAIL: $app fingerprints differ (ff $fp_on vs slow $fp_off)" >&2
    exit 1
  fi
  speedup=$(awk -v a="$off_ms" -v b="$on_ms" 'BEGIN { printf "%.2f", a / b }')
  echo "$app: $trials trials, ff ${on_ms}ms vs slow ${off_ms}ms (${speedup}x), fingerprint $fp_on"
  total_on_ms=$((total_on_ms + on_ms))
  total_off_ms=$((total_off_ms + off_ms))
  total_trials=$((total_trials + trials))
  rows+=$(printf '    {"app": "%s", "trials": %d, "ff_on_ms": %d, "ff_off_ms": %d, "speedup": %s},\n' \
    "$app" "$trials" "$on_ms" "$off_ms" "$speedup")$'\n'
done

speedup=$(awk -v a="$total_off_ms" -v b="$total_on_ms" 'BEGIN { printf "%.2f", a / b }')
tps_on=$(awk -v t="$total_trials" -v ms="$total_on_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')
tps_off=$(awk -v t="$total_trials" -v ms="$total_off_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')

cat > "$OUT" <<EOF
{
  "bench": "fast_forward",
  "layer": "uarch",
  "n_per_structure": $N,
  "seed": $SEED,
  "apps": [
${rows%,*}
  ],
  "total_trials": $total_trials,
  "ff_on": {"wall_ms": $total_on_ms, "trials_per_sec": $tps_on},
  "ff_off": {"wall_ms": $total_off_ms, "trials_per_sec": $tps_off},
  "speedup": $speedup,
  "threshold": $THRESHOLD
}
EOF
echo "wrote $OUT"
echo "aggregate: $total_trials trials, ff ${tps_on}/s vs slow ${tps_off}/s — ${speedup}x"

awk -v s="$speedup" -v t="$THRESHOLD" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: aggregate speedup ${speedup}x is below the ${THRESHOLD}x gate" >&2
  exit 1
}
echo "fast-forward speedup gate: OK (>= ${THRESHOLD}x)"
