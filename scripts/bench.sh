#!/usr/bin/env bash
# Engine speedup measurements (docs/PERF.md, docs/TRACE.md). Two gated
# artifacts from the same binary:
#
#   results/BENCH_5.json — golden-prefix fast-forward vs the slow path
#     (--no-fast-forward) on the PR-5 workload, >= 3x aggregate;
#   results/BENCH_9.json — the trace-replay backend (--backend replay)
#     vs the fast-forward baseline, >= 5x aggregate.
#
# Every campaign is run under each engine and the result fingerprints
# must agree — the speedup claims are only meaningful because the
# classifications are byte-identical.
#
# The replay workload deliberately uses applications whose access
# patterns leave most fault footprints dead (streaming/graph apps:
# ~90%+ of trials synthesize without simulating), at a trial count
# that amortizes the one-time trace capture — that is the regime the
# backend exists for; docs/TRACE.md discusses the dead-fraction cap.
#
#   scripts/bench.sh                      # default workloads
#   APPS="VA" N=24 scripts/bench.sh       # override BENCH_5 workload
#   REPLAY_APPS="VA" REPLAY_N=96 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

APPS=${APPS:-"LUD SRADv1 SCP"}
N=${N:-12}
SEED=${SEED:-7}
THRESHOLD=${THRESHOLD:-3.0}
REPLAY_APPS=${REPLAY_APPS:-"VA NW"}
REPLAY_N=${REPLAY_N:-288}
REPLAY_THRESHOLD=${REPLAY_THRESHOLD:-5.0}
OUT=results/BENCH_5.json
OUT_REPLAY=results/BENCH_9.json

echo "==> cargo build --release -p bench"
cargo build --release -q -p bench
CAMPAIGN=target/release/campaign

run_ms() { # app n extra-flags... -> "wall_ms trials fingerprint"
  local app=$1 n=$2
  shift 2
  local log s e
  log=$(mktemp)
  s=$(date +%s%N)
  "$CAMPAIGN" run --app "$app" --layer uarch --n "$n" --seed "$SEED" "$@" \
    > "$log" 2>&1
  e=$(date +%s%N)
  local trials fp
  trials=$(grep -oE 'plan: [0-9]+ trials' "$log" | grep -oE '[0-9]+')
  fp=$(grep -oE 'result fingerprint: 0x[0-9a-f]+' "$log" | grep -oE '0x[0-9a-f]+')
  rm -f "$log"
  echo "$(((e - s) / 1000000)) $trials $fp"
}

# ---- BENCH_5: fast-forward vs slow path --------------------------------
total_on_ms=0
total_off_ms=0
total_trials=0
rows=""
for app in $APPS; do
  # Warm up caches and the allocator before timing anything.
  "$CAMPAIGN" run --app "$app" --layer uarch --n 2 --seed "$SEED" > /dev/null 2>&1
  read -r on_ms trials fp_on <<< "$(run_ms "$app" "$N")"
  read -r off_ms _ fp_off <<< "$(run_ms "$app" "$N" --no-fast-forward)"
  if [ "$fp_on" != "$fp_off" ]; then
    echo "FAIL: $app fingerprints differ (ff $fp_on vs slow $fp_off)" >&2
    exit 1
  fi
  speedup=$(awk -v a="$off_ms" -v b="$on_ms" 'BEGIN { printf "%.2f", a / b }')
  echo "$app: $trials trials, ff ${on_ms}ms vs slow ${off_ms}ms (${speedup}x), fingerprint $fp_on"
  total_on_ms=$((total_on_ms + on_ms))
  total_off_ms=$((total_off_ms + off_ms))
  total_trials=$((total_trials + trials))
  rows+=$(printf '    {"app": "%s", "trials": %d, "ff_on_ms": %d, "ff_off_ms": %d, "speedup": %s},\n' \
    "$app" "$trials" "$on_ms" "$off_ms" "$speedup")$'\n'
done

speedup=$(awk -v a="$total_off_ms" -v b="$total_on_ms" 'BEGIN { printf "%.2f", a / b }')
tps_on=$(awk -v t="$total_trials" -v ms="$total_on_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')
tps_off=$(awk -v t="$total_trials" -v ms="$total_off_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')

cat > "$OUT" <<EOF
{
  "bench": "fast_forward",
  "layer": "uarch",
  "n_per_structure": $N,
  "seed": $SEED,
  "apps": [
${rows%,*}
  ],
  "total_trials": $total_trials,
  "ff_on": {"wall_ms": $total_on_ms, "trials_per_sec": $tps_on},
  "ff_off": {"wall_ms": $total_off_ms, "trials_per_sec": $tps_off},
  "speedup": $speedup,
  "threshold": $THRESHOLD
}
EOF
echo "wrote $OUT"
echo "aggregate: $total_trials trials, ff ${tps_on}/s vs slow ${tps_off}/s — ${speedup}x"

# ---- BENCH_9: trace-replay backend vs fast-forward ---------------------
r_ff_ms=0
r_replay_ms=0
r_trials=0
replay_rows=""
for app in $REPLAY_APPS; do
  "$CAMPAIGN" run --app "$app" --layer uarch --n 2 --seed "$SEED" > /dev/null 2>&1
  read -r ff_ms trials fp_ff <<< "$(run_ms "$app" "$REPLAY_N")"
  read -r replay_ms _ fp_replay <<< "$(run_ms "$app" "$REPLAY_N" --backend replay)"
  if [ "$fp_ff" != "$fp_replay" ]; then
    echo "FAIL: $app fingerprints differ (ff $fp_ff vs replay $fp_replay)" >&2
    exit 1
  fi
  replay_speedup=$(awk -v a="$ff_ms" -v b="$replay_ms" 'BEGIN { printf "%.2f", a / b }')
  echo "$app: $trials trials, ff ${ff_ms}ms vs replay ${replay_ms}ms (${replay_speedup}x), fingerprint $fp_ff"
  r_ff_ms=$((r_ff_ms + ff_ms))
  r_replay_ms=$((r_replay_ms + replay_ms))
  r_trials=$((r_trials + trials))
  replay_rows+=$(printf '    {"app": "%s", "trials": %d, "ff_ms": %d, "replay_ms": %d, "speedup": %s},\n' \
    "$app" "$trials" "$ff_ms" "$replay_ms" "$replay_speedup")$'\n'
done

replay_speedup=$(awk -v a="$r_ff_ms" -v b="$r_replay_ms" 'BEGIN { printf "%.2f", a / b }')
tps_ff=$(awk -v t="$r_trials" -v ms="$r_ff_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')
tps_replay=$(awk -v t="$r_trials" -v ms="$r_replay_ms" 'BEGIN { printf "%.1f", t * 1000 / ms }')

cat > "$OUT_REPLAY" <<EOF
{
  "bench": "replay",
  "layer": "uarch",
  "n_per_structure": $REPLAY_N,
  "seed": $SEED,
  "baseline": "fast_forward",
  "apps": [
${replay_rows%,*}
  ],
  "total_trials": $r_trials,
  "ff": {"wall_ms": $r_ff_ms, "trials_per_sec": $tps_ff},
  "replay": {"wall_ms": $r_replay_ms, "trials_per_sec": $tps_replay},
  "speedup": $replay_speedup,
  "threshold": $REPLAY_THRESHOLD
}
EOF
echo "wrote $OUT_REPLAY"
echo "aggregate: replay ${tps_replay}/s vs ff ${tps_ff}/s — ${replay_speedup}x"

awk -v s="$speedup" -v t="$THRESHOLD" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: aggregate speedup ${speedup}x is below the ${THRESHOLD}x gate" >&2
  exit 1
}
echo "fast-forward speedup gate: OK (>= ${THRESHOLD}x)"

awk -v s="$replay_speedup" -v t="$REPLAY_THRESHOLD" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: aggregate replay speedup ${replay_speedup}x is below the ${REPLAY_THRESHOLD}x gate" >&2
  exit 1
}
echo "replay speedup gate: OK (>= ${REPLAY_THRESHOLD}x)"
