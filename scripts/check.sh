#!/usr/bin/env bash
# Tier-1 gate: run before every push (referenced from ROADMAP.md).
#
#   scripts/check.sh
#
# Builds the whole workspace in release mode, runs the full test suite,
# and verifies rustfmt cleanliness. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (criterion benches must compile)"
cargo bench --no-run -q

echo "==> campaign shard-merge + fast-forward smoke"
cargo run --release -q -p bench --bin campaign -- smoke

echo "==> ace_study smoke"
cargo run --release -q -p bench --bin ace_study -- smoke

echo "==> fault_model_study smoke"
cargo run --release -q -p bench --bin fault_model_study -- smoke

echo "==> twolevel_study smoke"
cargo run --release -q -p bench --bin twolevel_study -- smoke

echo "==> dispatch smoke (coordinator + 2 workers, one killed mid-run)"
# Single-process reference, then the same campaign through the dispatch
# service (docs/DISPATCH.md) with a worker that dies mid-lease via the
# --fail-after hook. The merged CSV must be byte-identical and the
# coordinator must report the dead worker's lease as reassigned.
CAMPAIGN=target/release/campaign
DISP=$(mktemp -d)
"$CAMPAIGN" run --app VA --layer uarch --n 6 --seed 1234 \
  --csv "$DISP/single.csv" > /dev/null
"$CAMPAIGN" serve --app VA --layer uarch --n 6 --seed 1234 --shards 3 \
  --listen 127.0.0.1:0 --port-file "$DISP/port.txt" \
  --telemetry-port 0 --telemetry-port-file "$DISP/telemetry-port.txt" \
  --lease-ms 400 --backoff-ms 50 --max-backoff-ms 200 --wait-ms 50 \
  --csv "$DISP/dispatch.csv" > /dev/null 2> "$DISP/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$DISP/port.txt" ] && break; sleep 0.1; done
PORT=$(cat "$DISP/port.txt")
# Telemetry (docs/OBSERVABILITY.md): before any worker joins the
# campaign cannot finish, so the coordinator's endpoints are provably
# scraped mid-run. /metrics must pass the exposition lint and /status
# must parse and render as a fleet view.
for _ in $(seq 1 100); do [ -s "$DISP/telemetry-port.txt" ] && break; sleep 0.1; done
TPORT=$(cat "$DISP/telemetry-port.txt")
"$CAMPAIGN" scrape "127.0.0.1:$TPORT"
curl -sf "http://127.0.0.1:$TPORT/metrics" | "$CAMPAIGN" lint
# Plain grep (not -q) so the reader drains the whole stream: -q exits on
# first match and the writer panics on the broken pipe under pipefail.
curl -sf "http://127.0.0.1:$TPORT/status" | grep '"role":"coordinator"' > /dev/null
"$CAMPAIGN" status "127.0.0.1:$TPORT" | grep 'coordinator' > /dev/null
"$CAMPAIGN" top "127.0.0.1:$TPORT" --interval-ms 100 --iterations 2 > /dev/null
"$CAMPAIGN" work --connect "127.0.0.1:$PORT" --name doomed \
  --fail-after 4 --heartbeat-ms 50 > /dev/null
"$CAMPAIGN" work --connect "127.0.0.1:$PORT" --name w1 --heartbeat-ms 50 \
  --telemetry-port 0 --telemetry-port-file "$DISP/w1-port.txt" --trace > /dev/null &
"$CAMPAIGN" work --connect "127.0.0.1:$PORT" --name w2 --heartbeat-ms 50 > /dev/null &
wait "$SERVE_PID"
wait
cmp "$DISP/single.csv" "$DISP/dispatch.csv"
grep -Eq '\([1-9][0-9]* reassigned' "$DISP/serve.log"

echo "==> fast-forward equivalence smoke (docs/PERF.md)"
# The golden-prefix fast-forward engine (default) must produce the same
# assembled CSV as a full slow-path run of the same plan.
"$CAMPAIGN" run --app VA --layer uarch --n 6 --seed 1234 --no-fast-forward \
  --csv "$DISP/slow.csv" > /dev/null
cmp "$DISP/single.csv" "$DISP/slow.csv"

echo "==> replay backend smoke (docs/TRACE.md)"
# The trace-replay backend records the golden access trace, adjudicates
# each trial's footprint deadness against it, and synthesizes masked
# records for provably-dead trials; the assembled CSV must be
# byte-identical to the timed backend's.
"$CAMPAIGN" run --app VA --layer uarch --n 6 --seed 1234 --backend replay \
  --csv "$DISP/replay.csv" > /dev/null
cmp "$DISP/single.csv" "$DISP/replay.csv"

echo "==> fault-model smoke (docs/FAULT_MODELS.md)"
# A non-default pattern must run end to end and stay path-independent:
# a burst-row campaign with and without fast-forward, byte-identical.
"$CAMPAIGN" run --app VA --layer uarch --n 4 --seed 1234 \
  --fault-model burst-row --csv "$DISP/burst.csv" > /dev/null
"$CAMPAIGN" run --app VA --layer uarch --n 4 --seed 1234 \
  --fault-model burst-row --no-fast-forward --csv "$DISP/burst-slow.csv" > /dev/null
cmp "$DISP/burst.csv" "$DISP/burst-slow.csv"
rm -rf "$DISP"
echo "dispatch + fast-forward + fault-model smoke: CSVs byte-identical"

echo "==> adaptive sizing smoke (docs/TWOLEVEL.md)"
# CI-driven wave sizing must be deterministic and resumable: an
# uninterrupted run, a run killed mid-wave-2 (--limit) and resumed from
# its per-wave checkpoints, and a dispatched run (coordinator + two
# followed workers) must all print the same plan/result fingerprints.
ADPT=$(mktemp -d)
AFLAGS=(--app VA --layer uarch --adaptive --ci-target 0.15
        --wave-size 6 --max-trials 24 --seed 53083)
"$CAMPAIGN" run "${AFLAGS[@]}" --csv "$ADPT/adaptive.csv" > "$ADPT/one.txt"
# The CSV parses (header + one row per stratum) and every stratum
# converged on the CI target before the trial cap.
head -1 "$ADPT/adaptive.csv" | grep -q '^Kernel,Target,Trials,Fail'
test "$(wc -l < "$ADPT/adaptive.csv")" -eq 6
! grep -q ',cap$' "$ADPT/adaptive.csv"
"$CAMPAIGN" run "${AFLAGS[@]}" --checkpoint "$ADPT/ck.jsonl" --limit 33 \
  > /dev/null
"$CAMPAIGN" run "${AFLAGS[@]}" --checkpoint "$ADPT/ck.jsonl" \
  --resume "$ADPT/ck.jsonl" > "$ADPT/two.txt"
cmp "$ADPT/one.txt" "$ADPT/two.txt"
"$CAMPAIGN" serve "${AFLAGS[@]}" --shards 3 --listen 127.0.0.1:0 \
  --port-file "$ADPT/port.txt" --lease-ms 400 --backoff-ms 50 \
  --max-backoff-ms 200 --wait-ms 50 > "$ADPT/served.txt" 2> /dev/null &
ADPT_PID=$!
for _ in $(seq 1 100); do [ -s "$ADPT/port.txt" ] && break; sleep 0.1; done
APORT=$(cat "$ADPT/port.txt")
"$CAMPAIGN" work --connect "127.0.0.1:$APORT" --follow --name aw1 > /dev/null &
"$CAMPAIGN" work --connect "127.0.0.1:$APORT" --follow --name aw2 > /dev/null &
wait "$ADPT_PID"
wait
grep 'fingerprint' "$ADPT/one.txt" > "$ADPT/fp-single.txt"
grep 'fingerprint' "$ADPT/served.txt" > "$ADPT/fp-served.txt"
cmp "$ADPT/fp-single.txt" "$ADPT/fp-served.txt"
rm -rf "$ADPT"
echo "adaptive smoke: single-shot == resumed == dispatched"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --release --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "tier-1 gate: OK"
