#!/usr/bin/env bash
# Tier-1 gate: run before every push (referenced from ROADMAP.md).
#
#   scripts/check.sh
#
# Builds the whole workspace in release mode, runs the full test suite,
# and verifies rustfmt cleanliness. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> campaign shard-merge smoke"
cargo run --release -q -p bench --bin campaign -- smoke

echo "==> ace_study smoke"
cargo run --release -q -p bench --bin ace_study -- smoke

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --release --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "tier-1 gate: OK"
