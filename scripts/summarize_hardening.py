#!/usr/bin/env python3
"""Summarize the hardening-study CSVs into the EXPERIMENTS.md bullet list.

Usage: python3 scripts/summarize_hardening.py  (prints markdown to stdout)
"""
import csv
import pathlib

R = pathlib.Path(__file__).resolve().parent.parent / "results"


def rows(name):
    with open(R / name) as f:
        return list(csv.DictReader(f))


def main():
    fig7 = rows("fig07_hardened_avf_svf.csv")
    fig8 = rows("fig08_hardened_sdc.csv")
    fig9 = rows("fig09_hardened_due_timeout.csv")
    fig11 = rows("fig11_control_path.csv")

    f = lambda r, k: float(r[k])

    total = len(fig7)
    avf_improved = sum(1 for r in fig7 if f(r, "AVF_TMR") < f(r, "AVF_base"))
    svf_improved = sum(1 for r in fig7 if f(r, "SVF_TMR") < f(r, "SVF_base"))
    avf_worse = [r["Kernel"] for r in fig7 if f(r, "AVF_TMR") > f(r, "AVF_base")]
    svf_worse = [r["Kernel"] for r in fig7 if f(r, "SVF_TMR") > f(r, "SVF_base")]

    sdc_resid = [(r["Kernel"], f(r, "AVF-SDC_TMR")) for r in fig8 if f(r, "AVF-SDC_TMR") > 0]
    sdc_up = [r["Kernel"] for r in fig8 if f(r, "AVF-SDC_TMR") > f(r, "AVF-SDC_base")]
    svf_sdc_tmr = [f(r, "SVF_TMR") for r in fig7]
    del svf_sdc_tmr

    due_up_avf = sum(1 for r in fig9 if f(r, "AVF-DUE_TMR") > f(r, "AVF-DUE_base"))
    due_up_svf = sum(1 for r in fig9 if f(r, "SVF-DUE_TMR") > f(r, "SVF-DUE_base"))

    ctrl_up = sum(1 for r in fig11 if f(r, "TMR") > f(r, "base"))

    print(f"* Figure 7: AVF improves for {avf_improved}/{total} kernels under TMR, "
          f"SVF for {svf_improved}/{total}. Kernels that get *worse*: "
          f"AVF {avf_worse or 'none'}; SVF {svf_worse or 'none'} "
          f"(paper: BackProp K2 & SRADv1 K2 worse in AVF; BackProp K1, "
          f"SRADv1 K2/K3 worse in SVF).")
    hi = sorted(sdc_resid, key=lambda x: -x[1])[:5]
    print(f"* Figure 8: residual AVF-SDCs after hardening in {len(sdc_resid)}/{total} "
          f"kernels (largest: {hi}); SDC *increases* under TMR for {sdc_up or 'none'} "
          f"(paper: SRADv1 K2). SVF-side SDCs collapse (Insight #5).")
    print(f"* Figure 9: DUE fraction rises under TMR for {due_up_avf}/{total} kernels "
          f"(AVF view) and {due_up_svf}/{total} (SVF view) — the paper's "
          f"'most kernels see DUEs increase'.")
    print(f"* Figure 11: control-path-affected masked runs increase under TMR for "
          f"{ctrl_up}/{total} kernels (paper: most kernels, one outlier).")


if __name__ == "__main__":
    main()
