//! Workspace integration tests: the cross-layer methodology end to end.

use gpu_reliability::prelude::*;
use kernels::apps::{scp::Scp, va::Va};
use vgpu_sim::HwStructure;

fn small_cfg() -> CampaignCfg {
    CampaignCfg::new(60, 60, 0xABCD)
}

#[test]
fn avf_is_much_smaller_than_svf() {
    // The paper's first-order observation: full-system vulnerability is
    // far below software-only vulnerability because of hardware masking
    // and derating.
    let cfg = small_cfg();
    let avf = run_uarch_campaign(&Va, &cfg, false);
    let svf = run_sw_campaign(&Va, &cfg, false);
    let a = avf.app_avf(&cfg.gpu).total();
    let s = svf.app_svf().total();
    assert!(a > 0.0, "some hardware faults must matter");
    assert!(s > 0.2, "software faults hit live state: {s}");
    assert!(a < s / 3.0, "AVF {a} must be well below SVF {s}");
}

#[test]
fn campaigns_are_deterministic() {
    let cfg = small_cfg();
    let a1 = run_uarch_campaign(&Va, &cfg, false);
    let a2 = run_uarch_campaign(&Va, &cfg, false);
    for (k1, k2) in a1.kernels.iter().zip(&a2.kernels) {
        for &h in &HwStructure::ALL {
            assert_eq!(
                k1.counts_of(h).counts,
                k2.counts_of(h).counts,
                "{h:?} counts must be reproducible"
            );
        }
    }
    let s1 = run_sw_campaign(&Va, &cfg, false);
    let s2 = run_sw_campaign(&Va, &cfg, false);
    assert_eq!(s1.kernels[0].counts, s2.kernels[0].counts);
}

#[test]
fn different_seeds_differ() {
    let mut cfg = small_cfg();
    let a1 = run_sw_campaign(&Va, &cfg, false);
    cfg.seed ^= 0xFFFF;
    let a2 = run_sw_campaign(&Va, &cfg, false);
    assert_ne!(
        a1.kernels[0].counts, a2.kernels[0].counts,
        "different seeds should sample different faults"
    );
}

#[test]
fn derating_factors_are_sane() {
    let cfg = small_cfg();
    let avf = run_uarch_campaign(&Scp, &cfg, false);
    let k = &avf.kernels[0];
    for &h in &HwStructure::ALL {
        let df = k.df_of(h);
        assert!((0.0..=1.0).contains(&df), "{h:?} DF {df}");
    }
    // SCP uses shared memory and a modest register count: both live DFs
    // are strictly between 0 and 1; cache DFs are exactly 1.
    assert!(k.df_of(HwStructure::RegFile) > 0.0 && k.df_of(HwStructure::RegFile) < 1.0);
    assert!(k.df_of(HwStructure::Smem) > 0.0 && k.df_of(HwStructure::Smem) < 1.0);
    assert_eq!(k.df_of(HwStructure::L1D), 1.0);
    assert_eq!(k.df_of(HwStructure::L2), 1.0);
}

#[test]
fn chip_avf_is_a_convex_combination_of_structures() {
    let cfg = small_cfg();
    let avf = run_uarch_campaign(&Va, &cfg, false);
    let k = &avf.kernels[0];
    let chip = k.chip_avf(&cfg.gpu).total();
    let min = HwStructure::ALL
        .iter()
        .map(|&h| k.avf(h).total())
        .fold(f64::MAX, f64::min);
    let max = HwStructure::ALL
        .iter()
        .map(|&h| k.avf(h).total())
        .fold(0.0f64, f64::max);
    assert!(
        chip >= min - 1e-12 && chip <= max + 1e-12,
        "{min} <= {chip} <= {max}"
    );
}

#[test]
fn tmr_eliminates_svf_sdcs_but_not_avf_sdcs_necessarily() {
    // Insight #5, software side: under TMR, a single software-level value
    // flip can corrupt at most one redundant copy, so the vote repairs it
    // and SVF-SDC collapses (faults inside the vote kernel itself are the
    // only residue).
    let cfg = CampaignCfg::new(80, 80, 0x7777);
    let base = run_sw_campaign(&Scp, &cfg, false);
    let tmr = run_sw_campaign(&Scp, &cfg, true);
    let sdc_base = base.app_svf().sdc;
    let sdc_tmr = tmr.app_svf().sdc;
    assert!(
        sdc_base > 0.1,
        "unprotected SCP has plenty of SDCs: {sdc_base}"
    );
    assert!(
        sdc_tmr < sdc_base / 4.0,
        "TMR must slash software-visible SDCs: {sdc_base} -> {sdc_tmr}"
    );
}

#[test]
fn tmr_through_the_sharded_engine_shows_the_cross_layer_gap() {
    // Insight #5 via the sharded engine, both injectors: software-level
    // TMR campaigns see SDCs collapse (a single value flip corrupts at
    // most one redundant copy, and the vote outvotes it), while the
    // microarchitecture level still finds SDCs — flips in structures the
    // redundant copies *share* (caches, shared memory) defeat the vote.
    // Running both hardened campaigns as 2-shard merges also pins down
    // that hardened plans shard and merge exactly like unhardened ones.
    // VA rather than SCP: its redundant copies lean harder on the shared
    // cache hierarchy, so hardware-level SDCs survive the vote.
    let cfg = CampaignCfg::new(80, 80, 0x7777);

    let sw_prep = prepare_sw_campaign(&Va, &cfg, true);
    let mut sw_records = Vec::new();
    for i in 0..2 {
        sw_records.extend(execute_shard(&sw_prep, &EngineCfg::sharded(2, i)).unwrap());
    }
    let sw_tmr = assemble_sw(&sw_prep, &sw_records).unwrap();
    assert_eq!(
        sw_tmr,
        run_sw_campaign(&Va, &cfg, true),
        "hardened SW campaign: 2-shard merge != single-shot"
    );

    let u_prep = prepare_uarch_campaign(&Va, &cfg, true);
    let mut u_records = Vec::new();
    for i in 0..2 {
        u_records.extend(execute_shard(&u_prep, &EngineCfg::sharded(2, i)).unwrap());
    }
    let avf_tmr = assemble_uarch(&u_prep, &u_records).unwrap();
    assert_eq!(
        avf_tmr,
        run_uarch_campaign(&Va, &cfg, true),
        "hardened uarch campaign: 2-shard merge != single-shot"
    );

    let sdc_base = run_sw_campaign(&Va, &cfg, false).app_svf().sdc;
    let sdc_sw_tmr = sw_tmr.app_svf().sdc;
    assert!(
        sdc_sw_tmr < sdc_base / 4.0,
        "TMR must slash software-visible SDCs: {sdc_base} -> {sdc_sw_tmr}"
    );
    let uarch_sdcs: u32 = avf_tmr
        .kernels
        .iter()
        .flat_map(|k| k.per_structure.iter())
        .map(|(_, c)| c.counts.sdc)
        .sum();
    assert!(
        uarch_sdcs > 0,
        "hardware-level faults must still slip past TMR (shared structures)"
    );
}

#[test]
fn outcome_population_is_exhaustive() {
    // Every injection lands in exactly one of the four classes.
    let cfg = small_cfg();
    let avf = run_uarch_campaign(&Va, &cfg, false);
    for k in &avf.kernels {
        for (_, camp) in &k.per_structure {
            assert_eq!(camp.counts.total() as usize, cfg.n_uarch);
        }
    }
}

#[test]
fn trend_comparison_plumbs_through() {
    let cfg = small_cfg();
    let apps: Vec<&dyn Benchmark> = vec![&Va, &Scp];
    let items: Vec<TrendItem> = apps
        .iter()
        .map(|b| {
            let avf = run_uarch_campaign(*b, &cfg, false);
            let svf = run_sw_campaign(*b, &cfg, false);
            TrendItem {
                name: b.name().to_string(),
                a: avf.app_avf(&cfg.gpu).total(),
                b: svf.app_svf().total(),
            }
        })
        .collect();
    let t = relia::compare_pairs(&items);
    assert_eq!(t.total(), 1);
}
