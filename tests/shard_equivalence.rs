//! Differential tests for the sharded campaign engine: for both injectors
//! and two benchmarks, a campaign split into 3 shards and merged — and a
//! campaign killed partway and resumed from its checkpoint — must produce
//! the *byte-identical* result of a single-shot run: same per-structure
//! outcome counts, same AVF/SVF rates, same derating factors.
//!
//! This is the load-bearing guarantee of docs/CAMPAIGNS.md: per-trial
//! seeds depend only on (campaign seed, app, kernel, target, trial), never
//! on the shard layout, and assembly is a commutative integer fold.

use gpu_reliability::prelude::*;
use kernels::apps::{scp::Scp, va::Va};
use relia::checkpoint::load_checkpoint;
use relia::{records_fingerprint, TrialRecord};
use std::path::PathBuf;
use vgpu_sim::{FaultPattern, HwStructure};

fn cfg() -> CampaignCfg {
    CampaignCfg::new(45, 45, 0x5EED_CAFE)
}

/// Same campaign, non-default fault model. Smaller n: the persistent
/// patterns cannot take the masked-convergence early exit, so each trial
/// simulates to launch end.
fn cfg_pattern(pattern: FaultPattern) -> CampaignCfg {
    let mut c = CampaignCfg::new(18, 18, 0x5EED_CAFE);
    c.pattern = pattern;
    c
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "relia_shard_eq_{}_{name}.jsonl",
        std::process::id()
    ))
}

/// Execute `prep` as `shards` independent shards and concatenate records.
fn run_sharded(prep: &relia::PreparedCampaign, shards: usize) -> Vec<TrialRecord> {
    let mut all = Vec::new();
    for i in 0..shards {
        all.extend(execute_shard(prep, &EngineCfg::sharded(shards, i)).unwrap());
    }
    all
}

/// Execute `prep` single-shot but killed after `limit` trials (leaving a
/// checkpoint), then resumed to completion from that checkpoint.
fn run_interrupted(prep: &relia::PreparedCampaign, path: &PathBuf) -> Vec<TrialRecord> {
    let _ = std::fs::remove_file(path);
    let interrupted = EngineCfg {
        checkpoint: Some(path.clone()),
        checkpoint_every: 7,
        trial_limit: Some(prep.plan.len() / 3 + 1),
        ..EngineCfg::single_shot()
    };
    let partial = execute_shard(prep, &interrupted).unwrap();
    assert!(
        partial.len() < prep.plan.len(),
        "interrupt must leave work undone"
    );
    // The checkpoint holds exactly what the killed run classified.
    assert_eq!(
        load_checkpoint(path).unwrap().records.len(),
        partial.len(),
        "checkpoint records every classified trial"
    );
    let resumed = EngineCfg {
        resume: Some(path.clone()),
        ..EngineCfg::single_shot()
    };
    let records = execute_shard(prep, &resumed).unwrap();
    let _ = std::fs::remove_file(path);
    records
}

fn check_uarch(bench: &dyn Benchmark, name: &str) {
    check_uarch_cfg(bench, name, cfg());
}

fn check_uarch_cfg(bench: &dyn Benchmark, name: &str, cfg: CampaignCfg) {
    let single = run_uarch_campaign(bench, &cfg, false);
    let prep = prepare_uarch_campaign(bench, &cfg, false);

    let sharded = run_sharded(&prep, 3);
    let merged = relia::assemble_uarch(&prep, &sharded).unwrap();
    assert_eq!(merged, single, "{name}: 3-shard merge != single-shot");

    let resumed = run_interrupted(&prep, &tmp(&format!("{name}_uarch")));
    let recovered = relia::assemble_uarch(&prep, &resumed).unwrap();
    assert_eq!(recovered, single, "{name}: interrupt+resume != single-shot");

    assert_eq!(
        records_fingerprint(&sharded),
        records_fingerprint(&resumed),
        "{name}: record fingerprints agree across execution strategies"
    );

    // Spell out the per-structure equivalence the struct equality implies,
    // so a future PartialEq change can't silently weaken this test.
    for (km, ks) in merged.kernels.iter().zip(&single.kernels) {
        for &h in &HwStructure::ALL {
            assert_eq!(km.counts_of(h).counts, ks.counts_of(h).counts);
            assert_eq!(
                km.counts_of(h).ctrl_affected_masked,
                ks.counts_of(h).ctrl_affected_masked
            );
            assert_eq!(km.df_of(h), ks.df_of(h), "{name} {h:?} derating factor");
            assert_eq!(km.avf(h), ks.avf(h), "{name} {h:?} AVF");
        }
        assert_eq!(km.cycles, ks.cycles);
    }
    assert_eq!(merged.app_avf(&cfg.gpu), single.app_avf(&cfg.gpu));
    assert_eq!(
        merged.app_avf_cache(&cfg.gpu),
        single.app_avf_cache(&cfg.gpu)
    );
}

fn check_sw(bench: &dyn Benchmark, name: &str) {
    check_sw_cfg(bench, name, cfg());
}

fn check_sw_cfg(bench: &dyn Benchmark, name: &str, cfg: CampaignCfg) {
    let single = run_sw_campaign(bench, &cfg, false);
    let prep = prepare_sw_campaign(bench, &cfg, false);

    let sharded = run_sharded(&prep, 3);
    let merged = relia::assemble_sw(&prep, &sharded).unwrap();
    assert_eq!(merged, single, "{name}: 3-shard merge != single-shot");

    let resumed = run_interrupted(&prep, &tmp(&format!("{name}_sw")));
    let recovered = relia::assemble_sw(&prep, &resumed).unwrap();
    assert_eq!(recovered, single, "{name}: interrupt+resume != single-shot");

    for (km, ks) in merged.kernels.iter().zip(&single.kernels) {
        assert_eq!(km.counts, ks.counts, "{name} dest-value counts");
        assert_eq!(km.counts_ld, ks.counts_ld, "{name} SVF-LD counts");
        assert_eq!(km.svf(), ks.svf(), "{name} SVF rates");
        assert_eq!(km.instrs, ks.instrs);
    }
    assert_eq!(merged.app_svf(), single.app_svf());
    assert_eq!(merged.app_svf_ld(), single.app_svf_ld());
}

#[test]
fn va_uarch_sharding_and_resume_are_equivalent() {
    check_uarch(&Va, "VA");
}

#[test]
fn va_sw_sharding_and_resume_are_equivalent() {
    check_sw(&Va, "VA");
}

#[test]
fn scp_uarch_sharding_and_resume_are_equivalent() {
    check_uarch(&Scp, "SCP");
}

#[test]
fn scp_sw_sharding_and_resume_are_equivalent() {
    check_sw(&Scp, "SCP");
}

// The non-default fault models must honor the same guarantee: the pattern
// is pure trial payload (it never feeds seed derivation), so shard layout,
// interruption, and resume must stay invisible — including for persistent
// stuck-at faults, whose sites are re-resolved identically on re-execution.

#[test]
fn va_uarch_burst_row_sharding_and_resume_are_equivalent() {
    check_uarch_cfg(&Va, "VA_burst_row", cfg_pattern(FaultPattern::BurstRow));
}

#[test]
fn va_uarch_stuck_at_1_sharding_and_resume_are_equivalent() {
    check_uarch_cfg(&Va, "VA_stuck_at_1", cfg_pattern(FaultPattern::StuckAt1));
}

#[test]
fn va_sw_double_adjacent_sharding_and_resume_are_equivalent() {
    check_sw_cfg(
        &Va,
        "VA_double_adjacent",
        cfg_pattern(FaultPattern::DoubleAdjacent),
    );
}

#[test]
fn va_sw_stuck_at_0_sharding_and_resume_are_equivalent() {
    check_sw_cfg(&Va, "VA_stuck_at_0", cfg_pattern(FaultPattern::StuckAt0));
}

#[test]
fn uneven_shard_counts_also_merge_exactly() {
    // 5 shards over a plan whose length is not a multiple of 5 — strided
    // partitioning leaves shards of different sizes; the merge must not
    // care.
    let cfg = CampaignCfg::new(13, 13, 0xA11CE);
    let single = run_sw_campaign(&Va, &cfg, false);
    let prep = prepare_sw_campaign(&Va, &cfg, false);
    assert_ne!(prep.plan.len() % 5, 0, "want ragged shards");
    let merged = relia::assemble_sw(&prep, &run_sharded(&prep, 5)).unwrap();
    assert_eq!(merged, single);
}

#[test]
fn resuming_a_complete_checkpoint_is_rejected() {
    let cfg = CampaignCfg::new(6, 6, 0xD0E);
    let prep = prepare_sw_campaign(&Va, &cfg, false);
    let path = tmp("complete");
    let _ = std::fs::remove_file(&path);
    let eng = EngineCfg {
        checkpoint: Some(path.clone()),
        ..EngineCfg::single_shot()
    };
    execute_shard(&prep, &eng).unwrap();
    let again = EngineCfg {
        resume: Some(path.clone()),
        ..EngineCfg::single_shot()
    };
    let err = execute_shard(&prep, &again).unwrap_err();
    assert!(
        matches!(err, EngineError::AlreadyComplete { done } if done == prep.plan.len()),
        "wanted AlreadyComplete, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resuming_a_foreign_checkpoint_is_rejected() {
    // A checkpoint from a different seed must not silently pollute a run.
    let cfg_a = CampaignCfg::new(6, 6, 1);
    let cfg_b = CampaignCfg::new(6, 6, 2);
    let path = tmp("foreign");
    let _ = std::fs::remove_file(&path);
    let prep_a = prepare_sw_campaign(&Va, &cfg_a, false);
    let eng = EngineCfg {
        checkpoint: Some(path.clone()),
        trial_limit: Some(2),
        ..EngineCfg::single_shot()
    };
    execute_shard(&prep_a, &eng).unwrap();
    let prep_b = prepare_sw_campaign(&Va, &cfg_b, false);
    let again = EngineCfg {
        resume: Some(path.clone()),
        ..EngineCfg::single_shot()
    };
    let err = execute_shard(&prep_b, &again).unwrap_err();
    assert!(
        matches!(err, EngineError::PlanMismatch(_)),
        "wanted PlanMismatch, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}

// The adaptive sizer extends the guarantee across *wave* boundaries
// (docs/TWOLEVEL.md): a campaign killed partway through its second wave
// and resumed from the per-wave checkpoint must reproduce the
// uninterrupted run byte for byte — same wave plans, same records, same
// converged intervals. Wave trials depend only on (seed, app, strata),
// never on how earlier waves were executed, so the kill is invisible.

#[test]
fn adaptive_campaign_killed_mid_wave_2_resumes_byte_identically() {
    use relia::plan::Layer;
    use stat::{run_adaptive, run_adaptive_single, uarch_targets, AdaptiveCfg};

    let cfg = CampaignCfg::new(0, 0, 0xAD_A911);
    let acfg = AdaptiveCfg::new(0.12, 8, 64);
    let targets = uarch_targets();
    let single = run_adaptive_single(&Va, &cfg, false, Layer::Uarch, &targets, &acfg).unwrap();
    assert!(
        single.waves >= 2,
        "campaign too easy: no second wave to kill"
    );

    let path = tmp("adaptive_wave2");
    let _ = std::fs::remove_file(&path);
    let interrupted = run_adaptive(
        &Va,
        &cfg,
        false,
        Layer::Uarch,
        &targets,
        &acfg,
        |prep, wave| {
            if wave != 1 {
                return execute_shard(prep, &EngineCfg::single_shot());
            }
            // Kill mid-wave-2: classify roughly half the wave, leaving a
            // resumable checkpoint behind.
            let killed = EngineCfg {
                checkpoint: Some(path.clone()),
                checkpoint_every: 3,
                trial_limit: Some(prep.plan.len() / 2),
                ..EngineCfg::single_shot()
            };
            let partial = execute_shard(prep, &killed)?;
            assert!(
                partial.len() < prep.plan.len(),
                "kill must leave wave-2 work undone"
            );
            assert_eq!(
                load_checkpoint(&path).unwrap().records.len(),
                partial.len(),
                "checkpoint records every classified wave-2 trial"
            );
            execute_shard(
                prep,
                &EngineCfg {
                    resume: Some(path.clone()),
                    ..EngineCfg::single_shot()
                },
            )
        },
    )
    .unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(single, interrupted, "kill+resume must be invisible");
    assert_eq!(single.plans_fp, interrupted.plans_fp);
    assert_eq!(single.records_fp, interrupted.records_fp);
    assert!(single.total_trials() > 0 && single.savings() >= 1.0);
}
