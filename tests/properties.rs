//! Property-based tests on core invariants, spanning the workspace.

use proptest::prelude::*;
use vgpu_arch::{CmpOp, KernelBuilder, MemSpace, Operand};
use vgpu_sim::cache::{load_via, store_via, Cache};
use vgpu_sim::{
    ArenaPlanner, Budget, CacheGeom, FaultPlan, GlobalMem, Gpu, GpuConfig, Latencies, Mode,
};

fn test_lat() -> Latencies {
    GpuConfig::default().lat
}

proptest! {
    /// Any value written through the cache hierarchy and read back — in any
    /// interleaving of other accesses — comes back intact (fault-free
    /// caches never corrupt data).
    #[test]
    fn cache_hierarchy_preserves_data(
        writes in prop::collection::vec((0u32..512, any::<u32>()), 1..60),
        probes in prop::collection::vec(0u32..512, 1..30),
    ) {
        let mut l1 = Cache::new(CacheGeom { bytes: 2048, line_bytes: 128, ways: 2, mshrs: 4 });
        let mut l2 = Cache::new(CacheGeom { bytes: 8192, line_bytes: 128, ways: 4, mshrs: 8 });
        let mut mem = GlobalMem::new(512 * 4 + 4096);
        mem.map(0, 512 * 4);
        let (mut mr, mut mw) = (0u64, 0u64);
        let mut shadow = vec![0u32; 512];
        let mut now = 0u64;
        for (word, value) in writes {
            store_via(&mut l1, &mut l2, &mut mem, word * 4, value, now, &test_lat(), &mut mr, &mut mw, None);
            shadow[word as usize] = value;
            now += 1000;
        }
        for word in probes {
            let r = load_via(&mut l1, &mut l2, &mut mem, word * 4, now, &test_lat(), &mut mr, &mut mw, None);
            prop_assert_eq!(r.value, shadow[word as usize]);
            now += 1000;
        }
    }

    /// A flipped bit in an L2 line is visible to a subsequent load of that
    /// word (no silent scrubbing), and flipping it back restores the value.
    #[test]
    fn l2_fault_is_observable_and_invertible(word in 0u32..64, bit in 0u8..32) {
        let mut l1 = Cache::new(CacheGeom { bytes: 1024, line_bytes: 128, ways: 2, mshrs: 4 });
        let mut l2 = Cache::new(CacheGeom { bytes: 8192, line_bytes: 128, ways: 4, mshrs: 8 });
        let mut mem = GlobalMem::new(64 * 4 + 4096);
        mem.map(0, 64 * 4);
        let (mut mr, mut mw) = (0u64, 0u64);
        mem.write_u32(word * 4, 0x5A5A_5A5A);
        // Load through the hierarchy so L2 holds the line; invalidate L1 so
        // the next read must come from L2.
        load_via(&mut l1, &mut l2, &mut mem, word * 4, 0, &test_lat(), &mut mr, &mut mw, None);
        l1.invalidate_all();
        let idx = l2.probe(word * 4 / 128).expect("line resident in L2");
        let byte_index = idx as u64 * 128 + (word as u64 * 4 % 128) + (bit as u64 / 8);
        l2.flip_bit(byte_index, bit % 8);
        let r = load_via(&mut l1, &mut l2, &mut mem, word * 4, 10_000, &test_lat(), &mut mr, &mut mw, None);
        prop_assert_eq!(r.value, 0x5A5A_5A5Au32 ^ (1 << ((bit / 8) * 8 + bit % 8)));
        // Flip back and reload (L1 holds the faulty copy; invalidate again).
        l2.flip_bit(byte_index, bit % 8);
        l1.invalidate_all();
        let r = load_via(&mut l1, &mut l2, &mut mem, word * 4, 20_000, &test_lat(), &mut mr, &mut mw, None);
        prop_assert_eq!(r.value, 0x5A5A_5A5A);
    }

    /// The arena planner never produces overlapping or adjacent
    /// allocations, and every allocation is fully mapped.
    #[test]
    fn planner_allocations_are_disjoint_and_mapped(sizes in prop::collection::vec(1u32..5000, 1..20)) {
        let mut planner = ArenaPlanner::new();
        let addrs: Vec<(u32, u32)> =
            sizes.iter().map(|&s| (planner.alloc(s), s)).collect();
        let mem = planner.build();
        for (i, &(a, s)) in addrs.iter().enumerate() {
            prop_assert!(mem.is_mapped_word(a));
            prop_assert!(mem.is_mapped_word(a + (s.div_ceil(4) - 1) * 4));
            for &(b, t) in &addrs[i + 1..] {
                let (ae, be) = (a + s.div_ceil(4) * 4, b + t.div_ceil(4) * 4);
                prop_assert!(ae <= b || be <= a, "overlap: [{a},{ae}) vs [{b},{be})");
            }
        }
    }

    /// Guard-gap probing: addresses just past an allocation are unmapped.
    #[test]
    fn guard_gaps_catch_overruns(size in 4u32..1000) {
        let mut planner = ArenaPlanner::new();
        let a = planner.alloc(size);
        planner.alloc(16);
        let mem = planner.build();
        let end = a + size.div_ceil(4) * 4;
        prop_assert!(!mem.is_mapped_word(end));
        prop_assert!(!mem.is_mapped_word(end + 256));
    }

    /// SIMT execution invariant: a guarded store writes exactly the lanes
    /// whose predicate holds, for any lane subset.
    #[test]
    fn predication_is_exact(threshold in 0u32..33) {
        let n = 32u32;
        let mut a = KernelBuilder::new("prop");
        let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        let p = a.pred();
        a.linear_tid(gid, tmp);
        a.isetp(p, gid, threshold, CmpOp::Lt, true);
        a.mov(addr, a.param(0));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.mov(v, 7u32);
        a.predicated(p, false, |a| a.st(MemSpace::Global, addr, 0, v));
        let k = a.build().unwrap();
        let mut planner = ArenaPlanner::new();
        let out = planner.alloc(n * 4);
        let mem = planner.build();
        let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Functional);
        let lc = vgpu_arch::LaunchConfig::new(1, n, vec![out]);
        gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited()).unwrap();
        for i in 0..n {
            let expect = if i < threshold { 7 } else { 0 };
            prop_assert_eq!(gpu.host_read_u32(out + i * 4), expect);
        }
    }

    /// Divergent loops reconverge for arbitrary per-lane trip counts.
    #[test]
    fn divergent_loops_reconverge(trips in prop::collection::vec(1u32..20, 32)) {
        let mut a = KernelBuilder::new("prop");
        let (gid, tmp, addr, cnt, bound) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
        let p = a.pred();
        a.linear_tid(gid, tmp);
        // bound = trips[gid] (read from a device array)
        a.mov(addr, a.param(1));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.ld(bound, MemSpace::Global, addr, 0);
        a.mov(cnt, 0u32);
        a.loop_while(|a| {
            a.iadd(cnt, cnt, 1u32);
            a.isetp(p, cnt, Operand::Reg(bound), CmpOp::Lt, true);
            (p, false)
        });
        // out[gid] = cnt (all lanes reconverged)
        a.mov(addr, a.param(0));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, cnt);
        let k = a.build().unwrap();
        let mut planner = ArenaPlanner::new();
        let out = planner.alloc(32 * 4);
        let tr = planner.alloc(32 * 4);
        let mut mem = planner.build();
        for (i, &t) in trips.iter().enumerate() {
            mem.write_u32(tr + i as u32 * 4, t);
        }
        let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Timed);
        let lc = vgpu_arch::LaunchConfig::new(1, 32, vec![out, tr]);
        gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited()).unwrap();
        for (i, &t) in trips.iter().enumerate() {
            prop_assert_eq!(gpu.host_read_u32(out + i as u32 * 4), t.max(1), "lane {}", i);
        }
    }
}
